/**
 * @file
 * Parameterized property tests over all six RMS kernels, plus
 * kernel-specific behavioral tests. These encode the paper's
 * Section 6.2 observations as invariants: quality increases
 * monotonically with problem size; dropping tasks degrades (never
 * helps beyond noise) quality; problem size follows the Table 3
 * dependency class.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "rms/workload.hpp"
#include "util/stats.hpp"

using namespace accordion;
using rms::RunConfig;
using rms::RunResult;
using rms::Workload;

namespace {

/** Reference runs are expensive; cache them per kernel. */
const RunResult &
referenceOf(const Workload &w)
{
    static std::map<std::string, RunResult> cache;
    auto it = cache.find(w.name());
    if (it == cache.end())
        it = cache.emplace(w.name(), w.runReference()).first;
    return it->second;
}

RunConfig
defaultConfig(const Workload &w)
{
    RunConfig c;
    c.input = w.defaultInput();
    c.threads = w.defaultThreads();
    return c;
}

} // namespace

class WorkloadTest : public ::testing::TestWithParam<const Workload *>
{
  protected:
    const Workload &w() const { return *GetParam(); }
};

TEST_P(WorkloadTest, MetadataComplete)
{
    EXPECT_FALSE(w().name().empty());
    EXPECT_FALSE(w().domain().empty());
    EXPECT_FALSE(w().qualityMetricName().empty());
    EXPECT_FALSE(w().accordionInputName().empty());
    EXPECT_GE(w().inputSweep().size(), 6u);
}

TEST_P(WorkloadTest, RunIsDeterministic)
{
    const RunConfig c = defaultConfig(w());
    const RunResult a = w().run(c);
    const RunResult b = w().run(c);
    ASSERT_EQ(a.output.size(), b.output.size());
    for (std::size_t i = 0; i < a.output.size(); ++i)
        EXPECT_DOUBLE_EQ(a.output[i], b.output[i]) << "i=" << i;
    EXPECT_DOUBLE_EQ(a.problemSize, b.problemSize);
}

TEST_P(WorkloadTest, SeedsChangeTheInstance)
{
    RunConfig a = defaultConfig(w());
    RunConfig b = a;
    b.seed = a.seed + 1;
    const RunResult ra = w().run(a);
    const RunResult rb = w().run(b);
    bool any_diff = ra.output.size() != rb.output.size();
    for (std::size_t i = 0; !any_diff && i < ra.output.size(); ++i)
        any_diff = ra.output[i] != rb.output[i];
    EXPECT_TRUE(any_diff);
}

TEST_P(WorkloadTest, TaskSetPopulated)
{
    const RunResult r = w().run(defaultConfig(w()));
    EXPECT_EQ(r.taskSet.numTasks, w().defaultThreads());
    EXPECT_GT(r.taskSet.instrPerTask, 0.0);
    EXPECT_GT(r.problemSize, 0.0);
    EXPECT_FALSE(r.output.empty());
}

TEST_P(WorkloadTest, ProblemSizeStrictlyIncreasesAlongSweep)
{
    double prev = 0.0;
    for (double input : w().inputSweep()) {
        RunConfig c = defaultConfig(w());
        c.input = input;
        const double ps = w().run(c).problemSize;
        EXPECT_GT(ps, prev) << "input=" << input;
        prev = ps;
    }
}

TEST_P(WorkloadTest, ReferenceQualityIsCeiling)
{
    // The hyper-accurate execution scores at least as well against
    // itself as the default run does.
    const RunResult &ref = referenceOf(w());
    const double q_ref = w().quality(ref, ref);
    const double q_def = w().quality(w().run(defaultConfig(w())), ref);
    EXPECT_GE(q_ref, q_def * 0.999);
}

TEST_P(WorkloadTest, QualityRisesWithProblemSize)
{
    // Section 6.2: Q increases with problem size monotonically.
    // Kernels are stochastic, so compare the sweep's ends rather
    // than every adjacent pair.
    const RunResult &ref = referenceOf(w());
    const auto sweep = w().inputSweep();
    RunConfig lo = defaultConfig(w());
    lo.input = sweep.front();
    RunConfig hi = defaultConfig(w());
    hi.input = sweep.back();
    EXPECT_GT(w().qualityOf(hi, ref), w().qualityOf(lo, ref));
}

TEST_P(WorkloadTest, DropHalfDegradesQuality)
{
    const RunResult &ref = referenceOf(w());
    RunConfig clean = defaultConfig(w());
    RunConfig dropped = clean;
    dropped.fault = fault::FaultPlan::dropHalf();
    const double q_clean = w().qualityOf(clean, ref);
    const double q_drop = w().qualityOf(dropped, ref);
    EXPECT_LT(q_drop, q_clean * 1.02); // never meaningfully better
    EXPECT_GT(q_drop, 0.0); // but never catastrophic (RMS tolerance)
}

TEST_P(WorkloadTest, DropDegradationIsOrdered)
{
    // More dropped tasks can only hurt, up to execution noise.
    const RunResult &ref = referenceOf(w());
    RunConfig c = defaultConfig(w());
    c.input = w().inputSweep().back(); // large problem: stable stats
    c.fault = fault::FaultPlan::dropQuarter();
    const double q25 = w().qualityOf(c, ref);
    c.fault = fault::FaultPlan::dropHalf();
    const double q50 = w().qualityOf(c, ref);
    EXPECT_LT(q50, q25 * 1.05);
}

TEST_P(WorkloadTest, TraitsAreSane)
{
    const auto t = w().traits();
    EXPECT_GT(t.cpiBase, 0.5);
    EXPECT_LT(t.cpiBase, 4.0);
    EXPECT_GT(t.memOpsPerInstr, 0.0);
    EXPECT_LT(t.memOpsPerInstr, 1.0);
    EXPECT_GE(t.privateMissRate, 0.0);
    EXPECT_LE(t.privateMissRate, 0.5);
    EXPECT_GE(t.overlapFactor, 0.0);
    EXPECT_LT(t.overlapFactor, 1.0);
    EXPECT_GT(t.serialFraction, 0.0);
    EXPECT_LT(t.serialFraction, 0.05);
}

TEST_P(WorkloadTest, Table3DependencyClassMatchesMeasurement)
{
    // Fit problem size vs Accordion input in log-log space; a
    // near-unit exponent is "linear", anything else "complex".
    std::vector<double> xs, ys;
    for (double input : w().inputSweep()) {
        RunConfig c = defaultConfig(w());
        c.input = input;
        xs.push_back(input);
        ys.push_back(w().run(c).problemSize);
    }
    const auto fit = util::fitPowerLaw(xs, ys);
    // Linear means the problem size grows proportionally with the
    // input (exponent ~ +1); inverse or super-linear laws (ferret's
    // 1/size_factor, bodytrack's refinement, x264's coefficient
    // count) are the paper's "complex" class.
    const bool measured_linear = std::abs(fit.slope - 1.0) < 0.15;
    const bool declared_linear =
        w().problemSizeDependency() == rms::Dependency::Linear;
    EXPECT_EQ(measured_linear, declared_linear)
        << "fitted exponent " << fit.slope;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadTest, ::testing::ValuesIn(rms::allWorkloads()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        return info.param->name();
    });

TEST(WorkloadRegistry, HasTheSixTable3Benchmarks)
{
    const auto &all = rms::allWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0]->name(), "canneal");
    EXPECT_EQ(all[1]->name(), "ferret");
    EXPECT_EQ(all[2]->name(), "bodytrack");
    EXPECT_EQ(all[3]->name(), "x264");
    EXPECT_EQ(all[4]->name(), "hotspot");
    EXPECT_EQ(all[5]->name(), "srad");
}

TEST(WorkloadRegistry, FindByName)
{
    EXPECT_EQ(rms::findWorkload("srad").name(), "srad");
    EXPECT_EXIT(rms::findWorkload("doom"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(WorkloadRegistry, SradProfilesAt32Threads)
{
    // Section 6.2: all benchmarks profile at 64 threads except srad
    // at 32.
    for (const Workload *w : rms::allWorkloads())
        EXPECT_EQ(w->defaultThreads(), w->name() == "srad" ? 32u : 64u)
            << w->name();
}

TEST(Canneal, MoreSwapsLowerCost)
{
    const auto &w = rms::findWorkload("canneal");
    RunConfig a;
    a.input = 48;
    RunConfig b;
    b.input = 768;
    EXPECT_GT(w.run(a).output.front(), w.run(b).output.front());
}

TEST(Canneal, InvertedDecisionsWorseThanDrop)
{
    // Section 6.3's validation: inverting the accept/reject
    // decision hurts far more than dropping the swaps outright.
    const auto &w = rms::findWorkload("canneal");
    const RunResult ref = w.runReference();
    RunConfig c;
    c.input = w.defaultInput();
    c.fault = fault::FaultPlan(fault::ErrorMode::Drop, 0.5);
    const double q_drop = w.qualityOf(c, ref);
    c.fault = fault::FaultPlan(fault::ErrorMode::InvertDecision, 0.5);
    const double q_invert = w.qualityOf(c, ref);
    EXPECT_LT(q_invert, q_drop);
}

TEST(Hotspot, ConvergesTowardSteadyState)
{
    const auto &w = rms::findWorkload("hotspot");
    const RunResult ref = w.runReference();
    RunConfig c;
    double prev_err = 1e300;
    for (double iters : {16.0, 64.0, 256.0}) {
        c.input = iters;
        const RunResult r = w.run(c);
        double err = 0.0;
        for (std::size_t i = 0; i < r.output.size(); ++i)
            err += std::abs(r.output[i] - ref.output[i]);
        EXPECT_LT(err, prev_err) << "iters=" << iters;
        prev_err = err;
    }
}

TEST(Hotspot, TemperaturesBoundedAndAboveAmbient)
{
    const auto &w = rms::findWorkload("hotspot");
    RunConfig c;
    c.input = 64;
    const RunResult r = w.run(c);
    for (double t : r.output) {
        EXPECT_GE(t, 79.0); // ambient is 80 C
        EXPECT_LT(t, 250.0);
    }
}

TEST(Srad, SmoothsSpeckleNoise)
{
    // Total variation of the image must drop as srad iterates.
    const auto &w = rms::findWorkload("srad");
    RunConfig c;
    c.input = 1;
    const RunResult noisy = w.run(c);
    c.input = 96;
    const RunResult smooth = w.run(c);
    auto tv = [](const std::vector<double> &img) {
        double sum = 0.0;
        for (std::size_t i = 1; i < img.size(); ++i)
            sum += std::abs(img[i] - img[i - 1]);
        return sum;
    };
    EXPECT_LT(tv(smooth.output), 0.8 * tv(noisy.output));
}

TEST(X264, LowerQpImprovesSsim)
{
    const auto &w = rms::findWorkload("x264");
    const RunResult ref = w.runReference();
    RunConfig hi_qp;
    hi_qp.input = 40;
    RunConfig lo_qp;
    lo_qp.input = 12;
    EXPECT_GT(w.qualityOf(lo_qp, ref), w.qualityOf(hi_qp, ref));
}

TEST(X264, LowerQpCodesMoreCoefficients)
{
    const auto &w = rms::findWorkload("x264");
    RunConfig a;
    a.input = 40;
    RunConfig b;
    b.input = 12;
    EXPECT_GT(w.run(b).problemSize, 1.5 * w.run(a).problemSize);
}

TEST(Ferret, PerQueryOutputsAreValidIndices)
{
    const auto &w = rms::findWorkload("ferret");
    RunConfig c;
    c.input = w.defaultInput();
    const RunResult r = w.run(c);
    for (double v : r.output) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 192.0);
        EXPECT_DOUBLE_EQ(v, std::floor(v));
    }
}

TEST(Ferret, DropExcludesSlices)
{
    const auto &w = rms::findWorkload("ferret");
    RunConfig c;
    c.input = w.defaultInput();
    c.fault = fault::FaultPlan::dropHalf();
    const RunResult dropped = w.run(c);
    c.fault = fault::FaultPlan();
    const RunResult clean = w.run(c);
    int differing = 0;
    for (std::size_t i = 0; i < clean.output.size(); ++i)
        differing += clean.output[i] != dropped.output[i];
    EXPECT_GT(differing, 0);
}

TEST(Bodytrack, MoreLayersTrackBetter)
{
    const auto &w = rms::findWorkload("bodytrack");
    const RunResult ref = w.runReference();
    RunConfig one;
    one.input = 1;
    RunConfig many;
    many.input = 8;
    EXPECT_GT(w.qualityOf(many, ref), w.qualityOf(one, ref));
}

TEST(Bodytrack, HighestDropSensitivityAmongKernels)
{
    // Fig. 4: bodytrack shows the most excessive Q degradation
    // under Drop 1/2 relative to its own Default. The tracker is
    // stochastic, so compare seed-averaged qualities.
    const auto &w = rms::findWorkload("bodytrack");
    double clean_sum = 0.0, drop_sum = 0.0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        RunConfig ref_cfg;
        ref_cfg.input = w.hyperAccurateInput();
        ref_cfg.seed = seed;
        const RunResult ref = w.run(ref_cfg);
        RunConfig c;
        c.input = 8;
        c.seed = seed;
        clean_sum += w.qualityOf(c, ref);
        c.fault = fault::FaultPlan::dropHalf();
        drop_sum += w.qualityOf(c, ref);
    }
    EXPECT_LT(drop_sum, clean_sum);
}
