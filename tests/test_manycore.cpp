/**
 * @file
 * Tests of the manycore substrate: event queue, FIFO resources,
 * both performance models (including cross-validation against each
 * other), and the power model's paper-critical properties.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <tuple>

#include "manycore/event_queue.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "vartech/variation_chip.hpp"

using namespace accordion::manycore;
using accordion::vartech::ChipFactory;
using accordion::vartech::ChipGeometry;
using accordion::vartech::Technology;
using accordion::vartech::VariationChip;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5.0, [&](SimTime) { order.push_back(2); });
    q.schedule(1.0, [&](SimTime) { order.push_back(0); });
    q.schedule(3.0, [&](SimTime) { order.push_back(1); });
    EXPECT_DOUBLE_EQ(q.run(), 5.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, StableAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i](SimTime) { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanReschedule)
{
    EventQueue q;
    int fires = 0;
    std::function<void(SimTime)> tick = [&](SimTime) {
        if (++fires < 4)
            q.scheduleAfter(2.0, tick);
    };
    q.schedule(0.0, tick);
    EXPECT_DOUBLE_EQ(q.run(), 6.0);
    EXPECT_EQ(fires, 4);
}

// -- Property tests: random schedules against the queue invariants --
// The BSP engine's determinism proof rests on EventQueue's total
// order (when, key, insertion) and on FifoResource's accounting; the
// suites below hammer both with seeded-random schedules.

TEST(EventQueueProperty, RandomScheduleFiresInTotalOrder)
{
    // Discrete times 0..19 and keys 0..7 force heavy ties on both
    // sort fields, so the tie-breakers actually get exercised.
    std::mt19937_64 rng(0xACC0BD10u);
    std::uniform_int_distribution<int> when_dist(0, 19);
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 7);
    constexpr int kEvents = 500;

    struct Fired
    {
        double when;
        std::uint64_t key;
        int insertion;
    };
    std::vector<Fired> fired;
    std::vector<Fired> scheduled;
    EventQueue q;
    q.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
        const double when = static_cast<double>(when_dist(rng));
        const std::uint64_t key = key_dist(rng);
        scheduled.push_back({when, key, i});
        q.schedule(when, key, [&fired, when, key, i](SimTime now) {
            EXPECT_DOUBLE_EQ(now, when);
            fired.push_back({when, key, i});
        });
    }
    q.run();

    ASSERT_EQ(fired.size(), scheduled.size());
    // The firing order must be exactly the stable sort of the
    // schedule by (when, key) — insertion order breaking ties.
    std::stable_sort(scheduled.begin(), scheduled.end(),
                     [](const Fired &a, const Fired &b) {
                         return std::tie(a.when, a.key) <
                                std::tie(b.when, b.key);
                     });
    for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].when, scheduled[i].when) << "at " << i;
        EXPECT_EQ(fired[i].key, scheduled[i].key) << "at " << i;
        EXPECT_EQ(fired[i].insertion, scheduled[i].insertion)
            << "at " << i;
    }
}

TEST(EventQueueProperty, ReschedulingHandlersKeepTimeMonotonic)
{
    // Handlers re-arm themselves with random non-negative delays
    // (including zero). now() must never move backwards and run()
    // must return the time of the last fire.
    std::mt19937_64 rng(20260808u);
    std::uniform_real_distribution<double> delay_dist(0.0, 7.5);
    EventQueue q;
    double last_now = 0.0;
    double max_now = 0.0;
    int fires = 0;
    constexpr int kMaxFires = 400;
    std::function<void(SimTime)> tick = [&](SimTime now) {
        EXPECT_GE(now, last_now);
        last_now = now;
        max_now = std::max(max_now, now);
        if (++fires < kMaxFires)
            q.scheduleAfter(delay_dist(rng), tick);
    };
    for (int i = 0; i < 8; ++i)
        q.schedule(delay_dist(rng), tick);
    const double end = q.run();
    // Once the cutoff hits, the other seed chains' pending events
    // still drain (without re-arming), so a handful of extra fires
    // past the cutoff is expected.
    EXPECT_GE(fires, kMaxFires);
    EXPECT_LE(fires, kMaxFires + 8);
    EXPECT_DOUBLE_EQ(end, max_now);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueProperty, ReserveDoesNotChangeOrder)
{
    auto runOnce = [](bool reserve) {
        std::mt19937_64 rng(42u);
        std::uniform_int_distribution<int> when_dist(0, 9);
        EventQueue q;
        if (reserve)
            q.reserve(256);
        std::vector<int> order;
        for (int i = 0; i < 200; ++i)
            q.schedule(static_cast<double>(when_dist(rng)),
                       [&order, i](SimTime) { order.push_back(i); });
        q.run();
        return order;
    };
    EXPECT_EQ(runOnce(true), runOnce(false));
}

TEST(FifoResourceProperty, RandomAcquisitionInvariants)
{
    // Arrival times are random and non-monotonic (the BSP engine
    // acquires buses at core-local times, which are not globally
    // sorted). Every grant must respect FIFO accumulation: completion
    // = max(now, previous completion) + service, completions strictly
    // spaced by the service time, and busy time = served x service.
    // Exactly representable service time so k x service accumulates
    // without rounding and the busy-time identity is exact.
    constexpr double kServiceNs = 3.5;
    std::mt19937_64 rng(7u);
    std::uniform_real_distribution<double> now_dist(0.0, 50.0);
    FifoResource bus(kServiceNs);
    double prev_completion = 0.0;
    double horizon = 0.0;
    for (int i = 0; i < 300; ++i) {
        const double now = now_dist(rng);
        horizon = std::max(horizon, now);
        const double expected =
            std::max(now, prev_completion) + kServiceNs;
        const double got = bus.acquire(now);
        EXPECT_DOUBLE_EQ(got, expected) << "request " << i;
        EXPECT_GE(got, now + kServiceNs);
        if (i > 0)
            EXPECT_GE(got, prev_completion + kServiceNs);
        prev_completion = got;
        EXPECT_EQ(bus.served(), static_cast<std::uint64_t>(i + 1));
        EXPECT_DOUBLE_EQ(bus.busyNs(), (i + 1) * kServiceNs);
    }
    EXPECT_LE(bus.utilization(prev_completion), 1.0);
    EXPECT_GT(bus.utilization(prev_completion), 0.0);
    EXPECT_DOUBLE_EQ(bus.utilization(0.0), 0.0);
}

TEST(FifoResource, QueuesBackToBackRequests)
{
    FifoResource bus(5.0);
    EXPECT_DOUBLE_EQ(bus.acquire(0.0), 5.0);
    EXPECT_DOUBLE_EQ(bus.acquire(0.0), 10.0); // queued behind
    EXPECT_DOUBLE_EQ(bus.acquire(20.0), 25.0); // idle gap
    EXPECT_EQ(bus.served(), 3u);
    EXPECT_DOUBLE_EQ(bus.busyNs(), 15.0);
    EXPECT_NEAR(bus.utilization(30.0), 0.5, 1e-12);
}

namespace {

std::vector<std::size_t>
firstCores(std::size_t n)
{
    std::vector<std::size_t> cores(n);
    std::iota(cores.begin(), cores.end(), 0);
    return cores;
}

TaskSet
makeTasks(std::size_t n, double instr)
{
    TaskSet t;
    t.numTasks = n;
    t.instrPerTask = instr;
    return t;
}

} // namespace

class PerfModelTest : public ::testing::Test
{
  protected:
    ChipGeometry geometry_;
    EventDrivenPerfModel event_;
    AnalyticPerfModel analytic_;
    WorkloadTraits traits_;
};

TEST_F(PerfModelTest, MoreCoresRunFaster)
{
    const TaskSet tasks = makeTasks(64, 50000);
    const double t16 = analytic_
                           .estimate(geometry_, firstCores(16), 1e9,
                                     tasks, traits_)
                           .seconds;
    const double t64 = analytic_
                           .estimate(geometry_, firstCores(64), 1e9,
                                     tasks, traits_)
                           .seconds;
    EXPECT_LT(t64, t16);
    EXPECT_GT(t64, t16 / 8.0); // not super-linear
}

TEST_F(PerfModelTest, HigherFrequencyRunsFaster)
{
    const TaskSet tasks = makeTasks(32, 50000);
    const auto cores = firstCores(32);
    const double slow =
        analytic_.estimate(geometry_, cores, 0.3e9, tasks, traits_)
            .seconds;
    const double fast =
        analytic_.estimate(geometry_, cores, 0.6e9, tasks, traits_)
            .seconds;
    EXPECT_LT(fast, slow);
    // Memory latencies are fixed in ns here, so the speedup is
    // sub-linear in f.
    EXPECT_GT(fast, slow / 2.0);
}

TEST_F(PerfModelTest, CycleConstantLatencyGivesLinearFrequencyScaling)
{
    // When latencies scale as 1/f (one frequency domain), execution
    // time must scale as 1/f exactly, modulo the serial tail.
    TaskSet tasks = makeTasks(32, 50000);
    const auto cores = firstCores(32);
    const double t1 = analytic_
                          .estimate(geometry_, cores, 0.25e9, tasks,
                                    traits_, 1e9 / 0.25e9)
                          .seconds;
    const double t2 = analytic_
                          .estimate(geometry_, cores, 0.5e9, tasks,
                                    traits_, 1e9 / 0.5e9)
                          .seconds;
    EXPECT_NEAR(t1 / t2, 2.0, 0.02);
}

TEST_F(PerfModelTest, AnalyticMatchesEventDriven)
{
    // The two implementations must agree on the machine's behavior
    // across core counts and frequencies.
    const TaskSet tasks = makeTasks(64, 20000);
    for (std::size_t n : {8u, 32u, 96u}) {
        for (double f : {0.3e9, 1.0e9}) {
            const double a = analytic_
                                 .estimate(geometry_, firstCores(n), f,
                                           tasks, traits_)
                                 .seconds;
            const double e = event_
                                 .estimate(geometry_, firstCores(n), f,
                                           tasks, traits_)
                                 .seconds;
            EXPECT_NEAR(a / e, 1.0, 0.25)
                << "n=" << n << " f=" << f;
        }
    }
}

TEST_F(PerfModelTest, ContentionRaisesBusUtilization)
{
    WorkloadTraits heavy = traits_;
    heavy.privateMissRate = 0.2; // hammer the cluster bus
    const TaskSet tasks = makeTasks(8, 50000);
    const auto est = event_.estimate(geometry_, firstCores(8), 1.0e9,
                                     tasks, heavy);
    EXPECT_GT(est.maxBusUtilization, 0.3);
    const auto light = event_.estimate(geometry_, firstCores(8), 1.0e9,
                                       tasks, traits_);
    EXPECT_LT(light.maxBusUtilization, est.maxBusUtilization);
}

TEST_F(PerfModelTest, SerialTailRunsOnControlCore)
{
    WorkloadTraits traits = traits_;
    traits.serialFraction = 0.05;
    TaskSet slow_cc = makeTasks(32, 20000);
    TaskSet fast_cc = slow_cc;
    fast_cc.ccFrequencyHz = 1.0e9;
    const auto cores = firstCores(32);
    const double t_slow =
        analytic_.estimate(geometry_, cores, 0.25e9, slow_cc, traits)
            .seconds;
    const double t_fast =
        analytic_.estimate(geometry_, cores, 0.25e9, fast_cc, traits)
            .seconds;
    EXPECT_LT(t_fast, t_slow);
}

TEST_F(PerfModelTest, MipsAccountsSerialWork)
{
    const TaskSet tasks = makeTasks(16, 10000);
    const auto est = analytic_.estimate(geometry_, firstCores(16), 1e9,
                                        tasks, traits_);
    EXPECT_NEAR(est.totalInstructions,
                16 * 10000 * (1.0 + traits_.serialFraction), 1.0);
    EXPECT_GT(est.mips(), 0.0);
}

TEST_F(PerfModelTest, EmptyTaskSetIsZero)
{
    const auto est = analytic_.estimate(geometry_, firstCores(8), 1e9,
                                        TaskSet{}, traits_);
    EXPECT_EQ(est.seconds, 0.0);
}

TEST_F(PerfModelTest, UtilizationDropsWithImbalance)
{
    // 9 tasks on 8 cores: one core does two rounds.
    const auto est = analytic_.estimate(geometry_, firstCores(8), 1e9,
                                        makeTasks(9, 10000), traits_);
    EXPECT_LT(est.avgCoreUtilization, 0.75);
}

TEST(ScaleLatencies, ScalesEveryField)
{
    MemorySystemParams mem;
    const MemorySystemParams scaled = scaleLatencies(mem, 2.0);
    EXPECT_DOUBLE_EQ(scaled.privateAccessNs, 2.0 * mem.privateAccessNs);
    EXPECT_DOUBLE_EQ(scaled.clusterAccessNs, 2.0 * mem.clusterAccessNs);
    EXPECT_DOUBLE_EQ(scaled.remoteRoundTripNs,
                     2.0 * mem.remoteRoundTripNs);
    EXPECT_DOUBLE_EQ(scaled.busServiceNs, 2.0 * mem.busServiceNs);
}

class PowerModelTest : public ::testing::Test
{
  protected:
    PowerModelTest()
        : tech_(Technology::makeItrs11nm()),
          factory_(tech_, ChipFactory::Params{}, 99),
          chip_(factory_.make(0)), power_(tech_)
    {
    }

    Technology tech_;
    ChipFactory factory_;
    VariationChip chip_;
    PowerModel power_;
};

TEST_F(PowerModelTest, NstvMatchesBudget)
{
    // 100 W / ~6.35 W per core (incl. uncore share) => 15 cores.
    const std::size_t n = power_.maxCoresAtStv(8);
    EXPECT_GE(n, 14u);
    EXPECT_LE(n, 16u);
    const double per_core =
        power_.corePowerNominal(1.0, tech_.fStv()) +
        power_.uncorePowerPerCluster(1.0) / 8.0;
    EXPECT_LE(per_core * static_cast<double>(n), power_.budget());
    EXPECT_GT(per_core * static_cast<double>(n + 1), power_.budget());
}

TEST_F(PowerModelTest, PowerMoreSensitiveToCoresThanFrequency)
{
    // The paper's core argument: doubling N costs more power than
    // doubling f, because N adds static AND dynamic power.
    std::vector<std::size_t> cores_1(36), cores_2(72);
    std::iota(cores_1.begin(), cores_1.end(), 0);
    std::iota(cores_2.begin(), cores_2.end(), 0);
    const double vdd = chip_.vddNtv();
    const double base =
        power_.chipPower(chip_, cores_1, vdd, 0.3e9).total();
    const double double_n =
        power_.chipPower(chip_, cores_2, vdd, 0.3e9).total();
    const double double_f =
        power_.chipPower(chip_, cores_1, vdd, 0.6e9).total();
    EXPECT_GT(double_n - base, double_f - base);
}

TEST_F(PowerModelTest, StaticShareHigherAtNtv)
{
    std::vector<std::size_t> cores(16);
    std::iota(cores.begin(), cores.end(), 0);
    const auto ntv = power_.chipPower(chip_, cores, chip_.vddNtv(),
                                      0.35e9);
    const auto stv =
        power_.chipPower(chip_, cores, 1.0, tech_.fStv());
    EXPECT_GT(ntv.staticShare(), stv.staticShare());
}

TEST_F(PowerModelTest, BreakdownAddsUp)
{
    std::vector<std::size_t> cores = {0, 1, 2, 8, 9};
    const auto b = power_.chipPower(chip_, cores, 0.55, 0.5e9, 0.9);
    EXPECT_NEAR(b.total(), b.coreDynamicW + b.coreStaticW + b.uncoreW,
                1e-12);
    EXPECT_GT(b.coreDynamicW, 0.0);
    EXPECT_GT(b.coreStaticW, 0.0);
    // Two clusters active (cores 0-2 in cluster 0, 8-9 in cluster 1).
    EXPECT_NEAR(b.uncoreW, 2.0 * power_.uncorePowerPerCluster(0.55),
                1e-12);
}

TEST_F(PowerModelTest, UtilizationScalesDynamicOnly)
{
    std::vector<std::size_t> cores = {0, 1};
    const auto busy = power_.chipPower(chip_, cores, 0.55, 0.5e9, 1.0);
    const auto idle = power_.chipPower(chip_, cores, 0.55, 0.5e9, 0.5);
    EXPECT_NEAR(idle.coreDynamicW, 0.5 * busy.coreDynamicW, 1e-12);
    EXPECT_DOUBLE_EQ(idle.coreStaticW, busy.coreStaticW);
}
