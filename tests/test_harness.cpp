/**
 * @file
 * Tests of the experiment-harness layer: the self-registration
 * registry, the strict CLI argument parsing, the RunContext's
 * shared-AccordionSystem cache (the `run all` build-once property),
 * and the ResultSink's CSV/NDJSON mirroring.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/accordion.hpp"
#include "harness/args.hpp"
#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/result_sink.hpp"
#include "harness/run_context.hpp"
#include "harness/stats_report.hpp"
#include "util/log.hpp"

using namespace accordion;

namespace {

/** Every bench driver ported into the registry. */
const char *const kExpectedExperiments[] = {
    "ablation_cc_policy",
    "ablation_checkpoint",
    "ablation_design_space",
    "ablation_fdomain",
    "ablation_vdd_percluster",
    "comparison_baselines",
    "ext_dynamic_orchestration",
    "ext_weak_scaling",
    "fig1a_operating_point",
    "fig1b_error_rate",
    "fig1c_guardband",
    "fig2_fig4_quality_fronts",
    "fig5_variation",
    "fig6_pareto_parsec",
    "fig7_pareto_rodinia",
    "headline_energy_efficiency",
    "montecarlo_sample",
    "sec62_error_model_validation",
    "sec63_speculative_f",
    "table1_modes",
    "table2_parameters",
    "table3_characterization",
};

TEST(HarnessRegistry, EnumeratesEveryPortedExperiment)
{
    const auto all = harness::Registry::instance().all();
    ASSERT_EQ(all.size(), std::size(kExpectedExperiments));
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), kExpectedExperiments[i]);
}

TEST(HarnessRegistry, NamesAreUniqueAndSorted)
{
    const auto all = harness::Registry::instance().all();
    for (std::size_t i = 0; i + 1 < all.size(); ++i)
        EXPECT_LT(all[i]->name(), all[i + 1]->name());
}

TEST(HarnessRegistry, EveryExperimentHasMetadata)
{
    for (const harness::Experiment *e :
         harness::Registry::instance().all()) {
        EXPECT_FALSE(e->artifact().empty()) << e->name();
        EXPECT_FALSE(e->description().empty()) << e->name();
    }
}

TEST(HarnessRegistry, FindUnknownReturnsNull)
{
    EXPECT_EQ(harness::Registry::instance().find("no_such_thing"),
              nullptr);
    EXPECT_NE(harness::Registry::instance().find("fig6_pareto_parsec"),
              nullptr);
}

TEST(HarnessArgs, ParsePositiveCountAcceptsStrictIntegers)
{
    std::size_t n = 0;
    EXPECT_TRUE(harness::parsePositiveCount("1", &n));
    EXPECT_EQ(n, 1u);
    EXPECT_TRUE(harness::parsePositiveCount("64", &n));
    EXPECT_EQ(n, 64u);
}

TEST(HarnessArgs, ParsePositiveCountRejectsGarbage)
{
    std::size_t n = 77;
    // The legacy strtol bug: trailing garbage must not pass.
    EXPECT_FALSE(harness::parsePositiveCount("4x", &n));
    EXPECT_FALSE(harness::parsePositiveCount("x4", &n));
    EXPECT_FALSE(harness::parsePositiveCount("", &n));
    EXPECT_FALSE(harness::parsePositiveCount("0", &n));
    EXPECT_FALSE(harness::parsePositiveCount("-3", &n));
    EXPECT_FALSE(harness::parsePositiveCount("+3", &n));
    EXPECT_FALSE(harness::parsePositiveCount(" 4", &n));
    EXPECT_FALSE(harness::parsePositiveCount("4 ", &n));
    EXPECT_FALSE(harness::parsePositiveCount("4.0", &n));
    EXPECT_FALSE(
        harness::parsePositiveCount("99999999999999999999999", &n));
    EXPECT_EQ(n, 77u) << "failed parse must leave *out untouched";
}

TEST(HarnessArgs, ParseSeedAllowsZero)
{
    std::uint64_t s = 0;
    EXPECT_TRUE(harness::parseSeed("0", &s));
    EXPECT_EQ(s, 0u);
    EXPECT_TRUE(harness::parseSeed("12345", &s));
    EXPECT_EQ(s, 12345u);
    EXPECT_FALSE(harness::parseSeed("-1", &s));
    EXPECT_FALSE(harness::parseSeed("12a", &s));
}

TEST(HarnessFormat, ParseFormat)
{
    EXPECT_EQ(harness::parseFormat("csv"),
              harness::OutputFormat::Csv);
    EXPECT_EQ(harness::parseFormat("json"),
              harness::OutputFormat::Json);
    EXPECT_EQ(harness::parseFormat("both"),
              harness::OutputFormat::Both);
    EXPECT_FALSE(harness::parseFormat("xml").has_value());
    EXPECT_FALSE(harness::parseFormat("").has_value());
}

TEST(HarnessCli, ParsesRunWithOptions)
{
    std::string error;
    const auto options = harness::parseCli(
        {"run", "fig6_pareto_parsec", "table1_modes", "--threads",
         "2", "--seed", "7", "--out-dir", "somewhere", "--format",
         "both"},
        &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->command,
              harness::CliOptions::Command::Run);
    EXPECT_FALSE(options->runAll);
    ASSERT_EQ(options->experiments.size(), 2u);
    EXPECT_EQ(options->experiments[0], "fig6_pareto_parsec");
    EXPECT_EQ(options->experiments[1], "table1_modes");
    EXPECT_EQ(options->run.threads, 2u);
    EXPECT_EQ(options->run.seed, 7u);
    EXPECT_EQ(options->run.outDir, "somewhere");
    EXPECT_EQ(options->run.format, harness::OutputFormat::Both);
}

TEST(HarnessCli, RejectsThreadsGarbage)
{
    std::string error;
    EXPECT_FALSE(
        harness::parseCli({"run", "all", "--threads", "4x"}, &error));
    EXPECT_NE(error.find("--threads"), std::string::npos);
    EXPECT_NE(error.find("4x"), std::string::npos);
    EXPECT_FALSE(
        harness::parseCli({"run", "all", "--threads", "0"}, &error));
    EXPECT_FALSE(
        harness::parseCli({"run", "all", "--threads"}, &error));
}

TEST(HarnessCli, RejectsBadFormat)
{
    std::string error;
    EXPECT_FALSE(
        harness::parseCli({"run", "all", "--format", "xml"}, &error));
    EXPECT_NE(error.find("csv, json or both"), std::string::npos);
}

TEST(HarnessCli, RejectsUnknownOptionAndBadShapes)
{
    std::string error;
    EXPECT_FALSE(harness::parseCli({"run", "all", "--what"}, &error));
    EXPECT_NE(error.find("unknown option"), std::string::npos);
    EXPECT_FALSE(harness::parseCli({"run"}, &error));
    EXPECT_NE(error.find("at least one experiment"),
              std::string::npos);
    EXPECT_FALSE(
        harness::parseCli({"run", "all", "table1_modes"}, &error));
    EXPECT_NE(error.find("not both"), std::string::npos);
    EXPECT_FALSE(harness::parseCli({"frobnicate"}, &error));
    EXPECT_NE(error.find("unknown command"), std::string::npos);
    EXPECT_FALSE(harness::parseCli({"list", "extra"}, &error));
}

TEST(HarnessCli, ParsesProfileWithOptions)
{
    std::string error;
    const auto options = harness::parseCli(
        {"profile", "substrate.perf_model_event_parallel", "--folded",
         "out.folded", "--interval", "250", "--reps", "3", "--scale",
         "0.5", "--threads", "4", "--seed", "99", "--top", "12",
         "--trace", "t.json", "--metrics-out", "m.prom",
         "--metrics-interval", "100"},
        &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->command,
              harness::CliOptions::Command::Profile);
    EXPECT_EQ(options->profile.scenario,
              "substrate.perf_model_event_parallel");
    EXPECT_EQ(options->profile.folded, "out.folded");
    EXPECT_EQ(options->profile.intervalUs, 250u);
    EXPECT_EQ(options->profile.reps, 3u);
    EXPECT_EQ(options->profile.scale, 0.5);
    EXPECT_EQ(options->profile.threads, 4u);
    EXPECT_EQ(options->profile.seed, 99u);
    EXPECT_EQ(options->profile.top, 12u);
    EXPECT_EQ(options->profile.trace, "t.json");
    EXPECT_EQ(options->profile.metricsOut, "m.prom");
    EXPECT_EQ(options->profile.metricsIntervalMs, 100u);
    EXPECT_FALSE(options->profile.list);
}

TEST(HarnessCli, ProfileDefaultsAndList)
{
    std::string error;
    const auto options =
        harness::parseCli({"profile", "some.scenario"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->profile.intervalUs, 1000u);
    EXPECT_EQ(options->profile.reps, 10u);
    EXPECT_EQ(options->profile.top, 20u);
    EXPECT_TRUE(options->profile.folded.empty());

    const auto list = harness::parseCli({"profile", "--list"}, &error);
    ASSERT_TRUE(list.has_value()) << error;
    EXPECT_TRUE(list->profile.list);
    EXPECT_TRUE(list->profile.scenario.empty());
}

TEST(HarnessCli, RejectsProfileBadShapes)
{
    std::string error;
    EXPECT_FALSE(harness::parseCli({"profile"}, &error));
    EXPECT_NE(error.find("exactly one scenario"), std::string::npos);
    EXPECT_FALSE(harness::parseCli({"profile", "a", "b"}, &error));
    EXPECT_NE(error.find("exactly one scenario"), std::string::npos);
    EXPECT_FALSE(
        harness::parseCli({"profile", "--list", "a"}, &error));
    EXPECT_NE(error.find("takes no scenario"), std::string::npos);
    EXPECT_FALSE(harness::parseCli(
        {"profile", "a", "--interval", "0"}, &error));
    EXPECT_NE(error.find("--interval"), std::string::npos);
    EXPECT_FALSE(
        harness::parseCli({"profile", "a", "--reps", "-1"}, &error));
    EXPECT_NE(error.find("--reps"), std::string::npos);
    EXPECT_FALSE(
        harness::parseCli({"profile", "a", "--folded"}, &error));
    EXPECT_FALSE(
        harness::parseCli({"profile", "a", "--bogus"}, &error));
    EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(HarnessCli, ParsesRunMetricsFlags)
{
    std::string error;
    const auto options = harness::parseCli(
        {"run", "table1_modes", "--metrics-out", "live.prom",
         "--metrics-interval", "250"},
        &error);
    ASSERT_TRUE(options.has_value()) << error;
    EXPECT_EQ(options->metricsOut, "live.prom");
    EXPECT_EQ(options->metricsIntervalMs, 250u);
    EXPECT_FALSE(harness::parseCli(
        {"run", "all", "--metrics-interval", "no"}, &error));
    EXPECT_NE(error.find("--metrics-interval"), std::string::npos);
}

TEST(HarnessCli, ResolvesUnknownExperimentToError)
{
    std::string error;
    const auto options =
        harness::parseCli({"run", "no_such_experiment"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    const auto experiments =
        harness::resolveExperiments(*options, &error);
    EXPECT_TRUE(experiments.empty());
    EXPECT_NE(error.find("unknown experiment 'no_such_experiment'"),
              std::string::npos);
}

TEST(HarnessCli, ResolvesAllInRegistryOrder)
{
    std::string error;
    const auto options = harness::parseCli({"run", "all"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    const auto experiments =
        harness::resolveExperiments(*options, &error);
    ASSERT_EQ(experiments.size(),
              harness::Registry::instance().size());
    for (std::size_t i = 0; i < experiments.size(); ++i)
        EXPECT_EQ(experiments[i]->name(), kExpectedExperiments[i]);
}

TEST(HarnessCli, ResolvesNamesInCommandLineOrder)
{
    std::string error;
    const auto options = harness::parseCli(
        {"run", "table1_modes", "fig1a_operating_point"}, &error);
    ASSERT_TRUE(options.has_value()) << error;
    const auto experiments =
        harness::resolveExperiments(*options, &error);
    ASSERT_EQ(experiments.size(), 2u);
    EXPECT_EQ(experiments[0]->name(), "table1_modes");
    EXPECT_EQ(experiments[1]->name(), "fig1a_operating_point");
}

TEST(HarnessConfigKey, IdenticalConfigsShareAKey)
{
    const core::AccordionSystem::Config a, b;
    EXPECT_EQ(a.key(), b.key());
}

TEST(HarnessConfigKey, EveryKnobMovesTheKey)
{
    const core::AccordionSystem::Config base;
    core::AccordionSystem::Config c = base;
    c.seed = 999;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.chipId = 3;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.perfEngine = core::PerfEngine::Event;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.perfEngine = core::PerfEngine::Bsp;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.pareto.isoTolerance *= 2.0;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.factory.variation.sigmaVthTotal *= 1.5;
    EXPECT_NE(c.key(), base.key());
    c = base;
    c.power.budgetW += 1.0;
    EXPECT_NE(c.key(), base.key());
}

TEST(HarnessRunContext, CachesSystemsByConfig)
{
    util::setVerbose(false);
    harness::RunContext::Options options;
    options.outDir = "harness_test_out";
    harness::RunContext ctx(options);
    EXPECT_EQ(ctx.systemBuilds(), 0u);

    core::AccordionSystem &a = ctx.system();
    core::AccordionSystem &b = ctx.system();
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(ctx.systemBuilds(), 1u);

    // An explicit config equal to the default one hits the cache.
    core::AccordionSystem::Config same;
    same.seed = ctx.seed();
    EXPECT_EQ(&ctx.system(same), &a);
    EXPECT_EQ(ctx.systemBuilds(), 1u);

    // A different seed is a different system.
    core::AccordionSystem::Config other;
    other.seed = 999;
    core::AccordionSystem &c = ctx.system(other);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(ctx.systemBuilds(), 2u);
    EXPECT_EQ(&ctx.system(other), &c);
    EXPECT_EQ(ctx.systemBuilds(), 2u);
}

TEST(HarnessRunContext, RunAllBuildsTheSystemOnce)
{
    util::setVerbose(false);
    harness::RunContext::Options options;
    options.outDir = "harness_test_out";
    harness::RunContext ctx(options);

    // Two system-using experiments back to back: the shared cache
    // must manufacture the chip exactly once.
    for (const char *name : {"ablation_fdomain", "ablation_checkpoint",
                             "table2_parameters"}) {
        const harness::Experiment *e =
            harness::Registry::instance().find(name);
        ASSERT_NE(e, nullptr) << name;
        ::testing::internal::CaptureStdout();
        e->run(ctx);
        ::testing::internal::GetCapturedStdout();
    }
    EXPECT_EQ(ctx.systemBuilds(), 1u);
}

TEST(HarnessResultSink, MirrorsRowsToCsvAndJson)
{
    const std::string dir = "harness_test_out/sink";
    std::filesystem::remove_all(dir);
    {
        harness::ResultSink sink(dir, harness::OutputFormat::Both);
        auto series = sink.series("mini", {"label", "value"});
        series.addRow(std::vector<std::string>{"first", "1.5"});
        series.addRow(std::vector<double>{2.0, 3.25});
    }

    std::ifstream csv(dir + "/mini.csv");
    ASSERT_TRUE(csv.good());
    std::stringstream csv_text;
    csv_text << csv.rdbuf();
    EXPECT_EQ(csv_text.str(), "label,value\nfirst,1.5\n2,3.25\n");

    std::ifstream json(dir + "/mini.jsonl");
    ASSERT_TRUE(json.good());
    std::stringstream json_text;
    json_text << json.rdbuf();
    EXPECT_EQ(json_text.str(),
              "{\"label\":\"first\",\"value\":1.5}\n"
              "{\"label\":2,\"value\":3.25}\n");
}

TEST(HarnessResultSink, CsvOnlyWritesNoJson)
{
    const std::string dir = "harness_test_out/sink_csv";
    std::filesystem::remove_all(dir);
    {
        harness::ResultSink sink(dir, harness::OutputFormat::Csv);
        auto series = sink.series("mini", {"a"});
        series.addRow({"1"});
    }
    EXPECT_TRUE(std::filesystem::exists(dir + "/mini.csv"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/mini.jsonl"));
}

TEST(HarnessResultSinkDeathTest, RowArityMismatchPanics)
{
    harness::ResultSink sink("harness_test_out/sink_arity",
                             harness::OutputFormat::Csv);
    auto series = sink.series("mini", {"a", "b"});
    EXPECT_DEATH(series.addRow({"only-one"}), "expected 2");
}

TEST(HarnessStatsReport, MergedQuantilesWeightByDecimationStride)
{
    // Experiment A: an undecimated reservoir of 4 fast samples.
    obs::StatEntry a;
    a.name = "time.phase_ns";
    a.kind = obs::StatKind::Distribution;
    a.count = 4;
    a.sum = 10.0;
    a.min = 1.0;
    a.max = 4.0;
    a.stride = 1;
    a.samples = {1.0, 2.0, 3.0, 4.0};

    // Experiment B: decimated at stride 4 — its 3 retained samples
    // stand for 12 raw (slow) samples.
    obs::StatEntry b = a;
    b.count = 12;
    b.sum = 1200.0;
    b.min = 100.0;
    b.max = 100.0;
    b.stride = 4;
    b.samples = {100.0, 100.0, 100.0};

    std::vector<harness::ExperimentSummary> summaries(2);
    summaries[0].name = "a";
    summaries[0].stats = {a};
    summaries[1].name = "b";
    summaries[1].stats = {b};

    const auto merged = harness::mergedStats(summaries);
    const obs::StatEntry &m = merged.at("time.phase_ns");
    EXPECT_EQ(m.count, 16u);
    EXPECT_EQ(m.stride, 4u);
    EXPECT_EQ(m.min, 1.0);
    EXPECT_EQ(m.max, 100.0);
    // A's reservoir is thinned 4:1 before pooling, so every merged
    // sample stands for 4 raw samples and the 12 slow raw samples
    // dominate the median; a naive concatenation of {1,2,3,4} with
    // {100,100,100} would have reported p50 = 3.5.
    ASSERT_EQ(m.samples.size(), 4u);
    EXPECT_DOUBLE_EQ(m.p50(), 100.0);
}

} // namespace
