/**
 * @file
 * Cross-validation of the BSP-partitioned event engine against the
 * serial EventDrivenPerfModel oracle: the two must produce
 * bit-identical ExecutionEstimates on a grid of core counts, trait
 * corners, latency scales and worker-team sizes, plus the epoch
 * edge cases (messages landing exactly on the lookahead horizon,
 * zero remote traffic, single-cluster floorplans).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "manycore/bsp_engine.hpp"
#include "manycore/perf_model.hpp"
#include "obs/stats.hpp"
#include "util/thread_pool.hpp"
#include "vartech/geometry.hpp"

using namespace accordion;
using namespace accordion::manycore;

namespace {

/** Sizes the global pool for a scope, restoring the default after. */
class PoolGuard
{
  public:
    explicit PoolGuard(std::size_t threads)
    {
        util::ThreadPool::setGlobalThreads(threads);
    }

    ~PoolGuard()
    {
        util::ThreadPool::setGlobalThreads(
            util::ThreadPool::defaultThreads());
    }
};

std::vector<std::size_t>
contiguousCores(std::size_t n)
{
    std::vector<std::size_t> cores(n);
    std::iota(cores.begin(), cores.end(), std::size_t{0});
    return cores;
}

/** Bitwise, not tolerance: the PR 1 determinism contract. */
void
expectBitIdentical(const ExecutionEstimate &bsp,
                   const ExecutionEstimate &oracle,
                   const std::string &label)
{
    EXPECT_EQ(bsp.seconds, oracle.seconds) << label;
    EXPECT_EQ(bsp.totalInstructions, oracle.totalInstructions) << label;
    EXPECT_EQ(bsp.avgCoreUtilization, oracle.avgCoreUtilization)
        << label;
    EXPECT_EQ(bsp.maxBusUtilization, oracle.maxBusUtilization) << label;
}

/**
 * Cross-validate one (cores, tasks, traits, f, scale) input across
 * worker-team sizes 1/2/4/8. Explicit team sizes force real spin-
 * barrier teams even on single-core machines.
 */
void
crossValidate(const vartech::ChipGeometry &geometry,
              const std::vector<std::size_t> &cores,
              const TaskSet &tasks, const WorkloadTraits &traits,
              double f_hz, double latency_scale,
              const std::string &label)
{
    const EventDrivenPerfModel oracle;
    const ExecutionEstimate ref = oracle.estimate(
        geometry, cores, f_hz, tasks, traits, latency_scale);
    for (std::size_t threads : {1, 2, 4, 8}) {
        PoolGuard pool(threads);
        const BspPerfModel bsp({}, threads);
        const ExecutionEstimate got = bsp.estimate(
            geometry, cores, f_hz, tasks, traits, latency_scale);
        expectBitIdentical(got, ref,
                           label + " @" + std::to_string(threads) +
                               " threads");
    }
}

WorkloadTraits
traitsNamed(const std::string &name)
{
    WorkloadTraits traits;
    if (name == "zero_remote") {
        traits.clusterMissRate = 0.0;
    } else if (name == "memory_heavy") {
        traits.memOpsPerInstr = 0.38;
        traits.privateMissRate = 0.06;
        traits.clusterMissRate = 0.2;
        traits.overlapFactor = 0.25;
    }
    return traits;
}

TEST(BspEngine, BitIdenticalAcrossGrid)
{
    const vartech::ChipGeometry geometry;
    for (std::size_t n : {8, 24, 64, 144}) {
        for (double scale : {0.5, 1.0, 2.5}) {
            for (const char *corner :
                 {"default", "zero_remote", "memory_heavy"}) {
                TaskSet tasks;
                tasks.numTasks = n;
                tasks.instrPerTask = 12000;
                crossValidate(geometry, contiguousCores(n), tasks,
                              traitsNamed(corner), 0.5e9, scale,
                              std::to_string(n) + " cores, scale " +
                                  std::to_string(scale) + ", " +
                                  corner);
            }
        }
    }
}

TEST(BspEngine, ScatteredCoresAndTaskImbalance)
{
    // Non-contiguous engaged cores (every 5th) puts uneven core
    // counts in each active cluster; 2n+3 tasks leaves a ragged
    // final round.
    const vartech::ChipGeometry geometry;
    std::vector<std::size_t> cores;
    for (std::size_t c = 0; c < geometry.numCores(); c += 5)
        cores.push_back(c);
    TaskSet tasks;
    tasks.numTasks = 2 * cores.size() + 3;
    tasks.instrPerTask = 9000;
    crossValidate(geometry, cores, tasks, WorkloadTraits{}, 0.6e9, 1.0,
                  "scattered cores");
}

TEST(BspEngine, SingleClusterFloorplanFallsBackToMonolithic)
{
    // One active cluster means no cross-cluster messages and no
    // epochs — the engine must run the monolithic path and still
    // match the oracle at any requested team size.
    vartech::ChipGeometry::Params params;
    params.clustersX = 1;
    params.clustersY = 1;
    const vartech::ChipGeometry geometry(params);
    TaskSet tasks;
    tasks.numTasks = 19;
    tasks.instrPerTask = 15000;
    crossValidate(geometry, contiguousCores(geometry.numCores()), tasks,
                  WorkloadTraits{}, 0.5e9, 1.0, "single cluster");
}

TEST(BspEngine, MessagesExactlyAtTheLookaheadHorizon)
{
    // Remote-heavy traffic with zero overlap: when the epoch's
    // earliest event is a Request at T and the peer bus is idle, the
    // Response lands at exactly T + L — precisely on the next epoch
    // horizon. The engine's strict `when < horizon` cut must hold
    // such messages for the following epoch (they are still in the
    // mailboxes at the cut); an off-by-one (<=) would diverge from
    // the oracle here.
    const vartech::ChipGeometry geometry;
    WorkloadTraits traits;
    traits.memOpsPerInstr = 0.3;
    traits.privateMissRate = 0.05;
    traits.clusterMissRate = 0.3;
    traits.overlapFactor = 0.0;
    TaskSet tasks;
    tasks.numTasks = 96;
    tasks.instrPerTask = 10000;
    crossValidate(geometry, contiguousCores(96), tasks, traits, 1.0e9,
                  1.0, "horizon ties");
}

TEST(BspEngine, LatencyScaleAndControlCoreClock)
{
    const vartech::ChipGeometry geometry;
    TaskSet tasks;
    tasks.numTasks = 48;
    tasks.instrPerTask = 14000;
    tasks.ccFrequencyHz = 1.1e9;
    crossValidate(geometry, contiguousCores(48), tasks,
                  WorkloadTraits{}, 0.8e9, 2.37, "scaled latencies");
}

TEST(BspEngine, AutoTeamSizeMatchesOracle)
{
    // Default-constructed engine: the team is picked from the pool
    // size and hardware concurrency. Whatever it lands on, results
    // must not move.
    const vartech::ChipGeometry geometry;
    TaskSet tasks;
    tasks.numTasks = 64;
    tasks.instrPerTask = 20000;
    const EventDrivenPerfModel oracle;
    const BspPerfModel bsp;
    const auto ref = oracle.estimate(geometry, contiguousCores(64),
                                     0.5e9, tasks, WorkloadTraits{});
    const auto got = bsp.estimate(geometry, contiguousCores(64), 0.5e9,
                                  tasks, WorkloadTraits{});
    expectBitIdentical(got, ref, "auto team");
}

TEST(BspEngine, EmptyTaskSetAndEngagedSubsets)
{
    const vartech::ChipGeometry geometry;
    const BspPerfModel bsp({}, 4);
    TaskSet empty;
    const auto est = bsp.estimate(geometry, contiguousCores(8), 0.5e9,
                                  empty, WorkloadTraits{});
    EXPECT_EQ(est.seconds, 0.0);
    EXPECT_EQ(est.totalInstructions, 0.0);

    // Fewer tasks than cores: idle cores must not disturb the rest.
    TaskSet sparse;
    sparse.numTasks = 5;
    sparse.instrPerTask = 8000;
    crossValidate(geometry, contiguousCores(40), sparse,
                  WorkloadTraits{}, 0.5e9, 1.0, "sparse tasks");
}

TEST(BspEngine, ObservabilityCountersTrackEpochsAndMessages)
{
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    const obs::Counter epochs = registry.counter("manycore.epochs");
    const obs::Counter msgs =
        registry.counter("manycore.cross_cluster_msgs");
    const std::uint64_t epochs0 = epochs.value();
    const std::uint64_t msgs0 = msgs.value();

    const vartech::ChipGeometry geometry;
    TaskSet tasks;
    tasks.numTasks = 64;
    tasks.instrPerTask = 12000;

    {
        PoolGuard pool(4);
        const BspPerfModel bsp({}, 4);
        (void)bsp.estimate(geometry, contiguousCores(64), 0.5e9, tasks,
                           WorkloadTraits{});
    }
    // 64 contiguous cores span 8 clusters: a real epoch loop with
    // remote traffic ran.
    EXPECT_GT(epochs.value(), epochs0 + 1);
    EXPECT_GT(msgs.value(), msgs0);
    EXPECT_GT(registry.counter("manycore.partition0.busy_ns").value(),
              0u);

    // Zero remote traffic: epochs may still tick, but no
    // cross-cluster message may be counted.
    const std::uint64_t msgs1 = msgs.value();
    {
        PoolGuard pool(4);
        const BspPerfModel bsp({}, 4);
        WorkloadTraits local = traitsNamed("zero_remote");
        (void)bsp.estimate(geometry, contiguousCores(64), 0.5e9, tasks,
                           local);
    }
    EXPECT_EQ(msgs.value(), msgs1);
    registry.setEnabled(false);
}

TEST(BspEngine, WaitStateCountersAttributePhases)
{
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();

    const vartech::ChipGeometry geometry;
    TaskSet tasks;
    tasks.numTasks = 64;
    tasks.instrPerTask = 12000;
    {
        PoolGuard pool(4);
        const BspPerfModel bsp({}, 4);
        (void)bsp.estimate(geometry, contiguousCores(64), 0.5e9, tasks,
                           WorkloadTraits{});
    }

    // 64 contiguous cores span 8 partitions worked by a team of 4:
    // every partition advances its heap and merges mailboxes, and
    // each worker's barrier wait lands on its home partition
    // (p = w < team). The last arrival waits zero, so assert the
    // team-wide sum, not any single worker.
    std::uint64_t barrier_total = 0;
    for (std::size_t p = 0; p < 8; ++p) {
        const std::string prefix =
            "manycore.partition" + std::to_string(p);
        EXPECT_GT(
            registry.counter(prefix + ".heap_advance_ns").value(), 0u)
            << prefix;
        EXPECT_GT(
            registry.counter(prefix + ".mailbox_merge_ns").value(), 0u)
            << prefix;
        barrier_total +=
            registry.counter(prefix + ".barrier_wait_ns").value();
    }
    EXPECT_GT(barrier_total, 0u);

    // The uninstrumented path must not collect (or crash): the same
    // run with the registry off leaves the counters untouched.
    registry.reset();
    registry.setEnabled(false);
    {
        PoolGuard pool(4);
        const BspPerfModel bsp({}, 4);
        (void)bsp.estimate(geometry, contiguousCores(64), 0.5e9, tasks,
                           WorkloadTraits{});
    }
    registry.setEnabled(true);
    EXPECT_EQ(
        registry.counter("manycore.partition0.barrier_wait_ns").value(),
        0u);
    registry.setEnabled(false);
}

} // namespace
