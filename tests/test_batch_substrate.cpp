/**
 * @file
 * Bit-identity property suite for the structure-of-arrays batch
 * substrate: for every batch query on VariationChip, the batch
 * output must equal the scalar accessor output bit for bit — same
 * helpers, same operand order, no tolerance. The grid spans both
 * technologies, several chip geometries (including odd, non-default
 * shapes), and a spread of vdd / f / perr operating points; batch
 * spans cover size 1, a prime size at a nonzero offset, and the
 * whole chip, so off-by-one windowing bugs cannot hide behind the
 * full-chip case.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "vartech/variation_chip.hpp"

using namespace accordion::vartech;

namespace {

struct GeometryCase
{
    const char *name;
    ChipGeometry::Params params;
};

/** Default 6x6 of 4x2, a tiny chip, and an odd 3x3 of 3x1. */
const GeometryCase kGeometries[] = {
    {"default_6x6_4x2", {6, 6, 4, 2, 20.0}},
    {"small_2x2_2x1", {2, 2, 2, 1, 10.0}},
    {"odd_3x3_3x1", {3, 3, 3, 1, 14.0}},
};

Technology
makeTech(bool itrs22)
{
    return itrs22 ? Technology::makeItrs22nm()
                  : Technology::makeItrs11nm();
}

VariationChip
makeChip(const Technology &tech, const GeometryCase &geometry,
         std::uint64_t seed, std::uint64_t id)
{
    ChipFactory::Params params;
    params.geometry = geometry.params;
    const ChipFactory factory(tech, params, seed);
    return factory.make(id);
}

/**
 * Spans to probe for an n-core (or n-cluster) chip: a batch of one
 * in the middle, a prime-sized window at an odd offset, and the
 * whole range. Degenerates gracefully for tiny n.
 */
struct Window
{
    std::size_t first;
    std::size_t count;
};

std::vector<Window>
windows(std::size_t n)
{
    std::vector<Window> out;
    out.push_back({n / 2, 1});
    const std::size_t prime = 7;
    if (n > prime)
        out.push_back({std::min<std::size_t>(3, n - prime),
                       prime});
    out.push_back({0, n});
    return out;
}

class BatchSubstrate
    : public ::testing::TestWithParam<std::tuple<bool, std::size_t>>
{
  protected:
    BatchSubstrate()
        : tech_(makeTech(std::get<0>(GetParam()))),
          geometry_(kGeometries[std::get<1>(GetParam())]),
          chip_(makeChip(tech_, geometry_, 12345, 3))
    {
    }

    Technology tech_;
    GeometryCase geometry_;
    VariationChip chip_;
};

TEST_P(BatchSubstrate, ErrorRatesMatchScalar)
{
    for (double f : {0.3e9, 0.7e9, 1.2e9}) {
        for (const Window &w : windows(chip_.numCores())) {
            std::vector<double> batch(w.count);
            chip_.errorRates(f, batch, w.first);
            for (std::size_t i = 0; i < w.count; ++i)
                EXPECT_EQ(batch[i],
                          chip_.coreErrorRate(w.first + i, f))
                    << "core " << w.first + i << " f " << f;
        }
    }
}

TEST_P(BatchSubstrate, SafeFrequenciesMatchScalar)
{
    for (double vdd : {0.45, 0.55, 0.7}) {
        for (const Window &w : windows(chip_.numCores())) {
            std::vector<double> batch(w.count);
            chip_.safeFrequencies(vdd, batch, w.first);
            for (std::size_t i = 0; i < w.count; ++i)
                EXPECT_EQ(batch[i],
                          chip_.coreSafeFAt(w.first + i, vdd))
                    << "core " << w.first + i << " vdd " << vdd;
        }
    }
}

TEST_P(BatchSubstrate, FrequenciesForErrorRateMatchScalar)
{
    for (double perr : {1e-12, 1e-7, 1e-3}) {
        for (const Window &w : windows(chip_.numCores())) {
            std::vector<double> batch(w.count);
            chip_.frequenciesForErrorRate(perr, batch, w.first);
            for (std::size_t i = 0; i < w.count; ++i)
                EXPECT_EQ(batch[i],
                          chip_.coreFrequencyForErrorRate(
                              w.first + i, perr))
                    << "core " << w.first + i << " perr " << perr;
        }
    }
}

TEST_P(BatchSubstrate, StaticPowersMatchScalar)
{
    for (double vdd : {0.45, 0.55, 0.7}) {
        for (const Window &w : windows(chip_.numCores())) {
            std::vector<double> batch(w.count);
            chip_.coreStaticPowers(vdd, batch, w.first);
            for (std::size_t i = 0; i < w.count; ++i)
                EXPECT_EQ(batch[i],
                          chip_.coreStaticPower(w.first + i, vdd))
                    << "core " << w.first + i << " vdd " << vdd;
        }
    }
}

TEST_P(BatchSubstrate, GatheredStaticPowersMatchScalar)
{
    // An arbitrary, non-contiguous, non-monotone gather list.
    std::vector<std::size_t> cores;
    for (std::size_t c = chip_.numCores(); c-- > 0;)
        if (c % 3 == 0)
            cores.push_back(c);
    std::vector<double> batch(cores.size());
    chip_.coreStaticPowers(0.55, cores, batch);
    for (std::size_t i = 0; i < cores.size(); ++i)
        EXPECT_EQ(batch[i], chip_.coreStaticPower(cores[i], 0.55))
            << "core " << cores[i];
}

TEST_P(BatchSubstrate, ClusterSafeFsMatchScalar)
{
    for (const Window &w : windows(chip_.numClusters())) {
        std::vector<double> batch(w.count);
        chip_.clusterSafeFs(batch, w.first);
        for (std::size_t i = 0; i < w.count; ++i)
            EXPECT_EQ(batch[i], chip_.clusterSafeF(w.first + i))
                << "cluster " << w.first + i;
    }
}

TEST_P(BatchSubstrate, SpanViewsMatchScalar)
{
    const std::span<const double> safe_f = chip_.coreSafeFs();
    ASSERT_EQ(safe_f.size(), chip_.numCores());
    for (std::size_t c = 0; c < chip_.numCores(); ++c)
        EXPECT_EQ(safe_f[c], chip_.coreSafeF(c));

    const std::span<const double> cluster_f = chip_.clusterSafeFs();
    ASSERT_EQ(cluster_f.size(), chip_.numClusters());
    const std::span<const double> vddmins = chip_.clusterVddMins();
    ASSERT_EQ(vddmins.size(), chip_.numClusters());
    for (std::size_t k = 0; k < chip_.numClusters(); ++k) {
        EXPECT_EQ(cluster_f[k], chip_.clusterSafeF(k));
        EXPECT_EQ(vddmins[k], chip_.clusterVddMin(k));
    }
}

TEST_P(BatchSubstrate, MinReductionsMatchManualLoops)
{
    // Gather set: every other core, reversed (exercises non-trivial
    // index order in the reductions).
    std::vector<std::size_t> cores;
    for (std::size_t c = chip_.numCores(); c-- > 0;)
        if (c % 2 == 0)
            cores.push_back(c);

    double safe = 1e300;
    for (std::size_t core : cores)
        safe = std::min(safe, chip_.coreSafeF(core));
    EXPECT_EQ(chip_.minSafeF(cores), safe);

    for (double perr : {1e-12, 1e-7, 1e-3}) {
        double spec = 1e300;
        for (std::size_t core : cores)
            spec = std::min(
                spec, chip_.coreFrequencyForErrorRate(core, perr));
        EXPECT_EQ(chip_.minFrequencyForErrorRate(perr, cores), spec)
            << "perr " << perr;
    }
}

TEST_P(BatchSubstrate, SlowestCoreIsClusterArgmin)
{
    for (std::size_t k = 0; k < chip_.numClusters(); ++k) {
        const std::size_t slow = chip_.slowestCoreOfCluster(k);
        EXPECT_EQ(chip_.geometry().clusterOfCore(slow), k);
        EXPECT_EQ(chip_.coreSafeF(slow), chip_.clusterSafeF(k));
        // First-wins argmin: no earlier core of the cluster is
        // strictly slower, and none before `slow` ties it.
        for (std::size_t core :
             chip_.geometry().coresOfCluster(k)) {
            EXPECT_GE(chip_.coreSafeF(core), chip_.clusterSafeF(k));
            if (core < slow)
                EXPECT_GT(chip_.coreSafeF(core),
                          chip_.clusterSafeF(k));
        }
    }
}

TEST_P(BatchSubstrate, CoreTimingViewIsBitIdenticalOracle)
{
    // The materialized per-core timing model must answer exactly
    // like the chip's batch paths: it is the oracle the SoA arrays
    // were filled from.
    const std::size_t probe[] = {0, chip_.numCores() / 2,
                                 chip_.numCores() - 1};
    for (std::size_t core : probe) {
        const CoreTimingModel timing = chip_.coreTiming(core);
        for (double vdd : {0.45, 0.55, 0.7})
            EXPECT_EQ(timing.safeFrequency(vdd),
                      chip_.coreSafeFAt(core, vdd))
                << "core " << core << " vdd " << vdd;
        EXPECT_EQ(timing.vth(),
                  chip_.technology().params().vthNom *
                      (1.0 + chip_.coreVthDev(core)))
            << "core " << core;
    }
}

std::string
caseName(const ::testing::TestParamInfo<std::tuple<bool, std::size_t>>
             &info)
{
    std::string name = std::get<0>(info.param) ? "itrs22" : "itrs11";
    name += "_";
    name += kGeometries[std::get<1>(info.param)].name;
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchSubstrate,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Range<std::size_t>(0, 3)),
    caseName);

} // namespace
