/**
 * @file
 * Tests of the instrumentation layer (src/obs/): the stats registry
 * contract (get-or-create, kind mismatch aborts, disabled handles
 * are free no-ops, reset keeps gauges), distribution quantiles and
 * the bounded sample reservoir, scoped phase timers against an
 * injected fake clock, the Chrome-trace writer (output is parsed
 * back with the shared test JSON parser), the thread pool's spans
 * and counters, and the thread-safety of util::log.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "test_json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace obs = accordion::obs;

namespace {

using testjson::Json;
using testjson::JsonParser;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + leaf;
}

/** Deterministic test clock: returns a settable value. */
class FakeClock : public obs::Clock
{
  public:
    std::uint64_t nowNs() const override { return now_; }
    void set(std::uint64_t ns) { now_ = ns; }
    void advance(std::uint64_t ns) { now_ += ns; }

  private:
    std::uint64_t now_ = 0;
};

/** Installs a FakeClock for the test's lifetime. */
class ClockGuard
{
  public:
    ClockGuard() { obs::setClock(&clock_); }
    ~ClockGuard() { obs::setClock(nullptr); }
    FakeClock &clock() { return clock_; }

  private:
    FakeClock clock_;
};

const Json *
findStat(const Json &stats, const std::string &name)
{
    auto it = stats.fields.find(name);
    return it == stats.fields.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------

TEST(StatsRegistry, RegisterIncrementSnapshot)
{
    obs::StatsRegistry registry(true);
    obs::Counter hits = registry.counter("cache.hits");
    obs::Gauge level = registry.gauge("pool.workers");
    obs::Distribution dur = registry.distribution("time.phase_ns");

    hits.inc();
    hits.add(41);
    level.set(8.0);
    dur.add(10.0);
    dur.add(30.0);

    EXPECT_EQ(hits.value(), 42u);
    EXPECT_EQ(level.value(), 8.0);
    EXPECT_EQ(registry.size(), 3u);

    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 3u);
    // Sorted by name.
    EXPECT_EQ(entries[0].name, "cache.hits");
    EXPECT_EQ(entries[0].kind, obs::StatKind::Counter);
    EXPECT_EQ(entries[0].count, 42u);
    EXPECT_EQ(entries[1].name, "pool.workers");
    EXPECT_EQ(entries[1].kind, obs::StatKind::Gauge);
    EXPECT_EQ(entries[1].value, 8.0);
    EXPECT_EQ(entries[2].name, "time.phase_ns");
    EXPECT_EQ(entries[2].kind, obs::StatKind::Distribution);
    EXPECT_EQ(entries[2].count, 2u);
    EXPECT_EQ(entries[2].sum, 40.0);
    EXPECT_EQ(entries[2].min, 10.0);
    EXPECT_EQ(entries[2].max, 30.0);
    EXPECT_EQ(entries[2].mean(), 20.0);
}

TEST(StatsRegistry, GetOrCreateSharesTheCell)
{
    obs::StatsRegistry registry(true);
    obs::Counter a = registry.counter("pool.tasks");
    obs::Counter b = registry.counter("pool.tasks");
    a.inc();
    b.inc();
    EXPECT_EQ(a.value(), 2u);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(StatsRegistryDeathTest, KindMismatchAborts)
{
    obs::StatsRegistry registry(true);
    registry.counter("x.count");
    EXPECT_DEATH(registry.gauge("x.count"), "x.count");
}

TEST(StatsRegistry, DisabledHandlesAreNoOps)
{
    obs::StatsRegistry registry(false);
    obs::Counter c = registry.counter("a");
    obs::Gauge g = registry.gauge("b");
    obs::Distribution d = registry.distribution("c");
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(d));
    c.inc();
    g.set(5.0);
    d.add(1.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(StatsRegistry, ResetZeroesCountersButKeepsGauges)
{
    obs::StatsRegistry registry(true);
    obs::Counter c = registry.counter("events");
    obs::Gauge g = registry.gauge("workers");
    obs::Distribution d = registry.distribution("time.x_ns");
    c.add(7);
    g.set(4.0);
    d.add(3.0);

    registry.reset();

    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 4.0); // levels survive
    const auto entries = registry.snapshot();
    for (const obs::StatEntry &e : entries) {
        if (e.name == "time.x_ns") {
            EXPECT_EQ(e.count, 0u);
            EXPECT_TRUE(e.samples.empty()); // reservoir drained too
        }
    }
    // Handles stay live after reset.
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(StatsRegistry, JsonDumpParsesBack)
{
    obs::StatsRegistry registry(true);
    registry.counter("montecarlo.samples").add(1000);
    registry.gauge("pool.utilization.mean").set(0.75);
    obs::Distribution d = registry.distribution("time.sweep_ns");
    d.add(5.0);
    d.add(15.0);

    const Json root = JsonParser(registry.jsonString()).parse();
    ASSERT_EQ(root.type, Json::Object);
    EXPECT_EQ(root.at("montecarlo.samples").number, 1000.0);
    EXPECT_EQ(root.at("pool.utilization.mean").number, 0.75);
    const Json &dist = root.at("time.sweep_ns");
    ASSERT_EQ(dist.type, Json::Object);
    EXPECT_EQ(dist.at("count").number, 2.0);
    EXPECT_EQ(dist.at("sum").number, 20.0);
    EXPECT_EQ(dist.at("min").number, 5.0);
    EXPECT_EQ(dist.at("max").number, 15.0);
    EXPECT_EQ(dist.at("mean").number, 10.0);
    EXPECT_EQ(dist.at("p50").number, 10.0);
    EXPECT_EQ(dist.at("p95").number, 14.5);
    EXPECT_EQ(dist.at("p99").number, 14.9);
}

// ---------------------------------------------------------------
// Distribution quantiles + the bounded sample reservoir
// ---------------------------------------------------------------

TEST(StatsRegistry, QuantilesExactBelowReservoirCap)
{
    obs::StatsRegistry registry(true);
    obs::Distribution d = registry.distribution("time.q_ns");
    // 1..100 in a scrambled (deterministic) order: quantiles must
    // not depend on insertion order.
    for (int i = 0; i < 100; ++i)
        d.add(static_cast<double>((i * 37) % 100 + 1));

    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    const obs::StatEntry &e = entries[0];
    ASSERT_EQ(e.samples.size(), 100u);
    EXPECT_TRUE(
        std::is_sorted(e.samples.begin(), e.samples.end()));
    // Linear interpolation between closest ranks over 1..100 (the
    // util::percentile convention).
    EXPECT_DOUBLE_EQ(e.p50(), 50.5);
    EXPECT_DOUBLE_EQ(e.p95(), 95.05);
    EXPECT_DOUBLE_EQ(e.p99(), 99.01);
    EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(e.quantile(100.0), 100.0);
}

TEST(StatsRegistry, ReservoirDecimatesBeyondCapKeepingBounds)
{
    obs::StatsRegistry registry(true);
    obs::Distribution d = registry.distribution("time.big_ns");
    const std::size_t n = 3 * obs::Distribution::kMaxSamples;
    for (std::size_t i = 0; i < n; ++i)
        d.add(static_cast<double>(i + 1));

    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    const obs::StatEntry &e = entries[0];
    // Exact aggregates are untouched by decimation...
    EXPECT_EQ(e.count, n);
    EXPECT_EQ(e.min, 1.0);
    EXPECT_EQ(e.max, static_cast<double>(n));
    // ...while the reservoir is bounded and still a uniform
    // subsample: its median tracks the true median within the
    // stride's resolution.
    ASSERT_FALSE(e.samples.empty());
    EXPECT_LE(e.samples.size(), obs::Distribution::kMaxSamples);
    EXPECT_GE(e.samples.size(), obs::Distribution::kMaxSamples / 4);
    const double true_median = static_cast<double>(n + 1) / 2.0;
    EXPECT_NEAR(e.p50(), true_median, true_median * 0.01);
}

TEST(StatsRegistry, PostDecimationRetentionFollowsNewStride)
{
    obs::StatsRegistry registry(true);
    obs::Distribution d = registry.distribution("time.stride_ns");
    const std::size_t cap = obs::Distribution::kMaxSamples;
    for (std::size_t i = 0; i < cap; ++i)
        d.add(1.0);
    auto reservoir = [&registry] {
        return registry.snapshot().at(0).samples.size();
    };
    const std::size_t kept = reservoir();
    ASSERT_EQ(kept, (cap + 1) / 2); // decimation just happened
    EXPECT_EQ(registry.snapshot().at(0).stride, 2u);
    // The first sample after a decimation must already be governed
    // by the doubled stride: skipped, not retained.
    d.add(1.0);
    EXPECT_EQ(reservoir(), kept);
    d.add(1.0);
    EXPECT_EQ(reservoir(), kept + 1);
}

TEST(SortedQuantile, EdgeCases)
{
    EXPECT_EQ(obs::sortedQuantile({}, 50.0), 0.0);
    EXPECT_EQ(obs::sortedQuantile({7.0}, 0.0), 7.0);
    EXPECT_EQ(obs::sortedQuantile({7.0}, 100.0), 7.0);
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 100.0), 40.0);
}

TEST(StatsRegistry, CountersAreAtomicAcrossThreads)
{
    obs::StatsRegistry registry(true);
    obs::Counter c = registry.counter("contended");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i)
                c.inc();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 80000u);
}

// ---------------------------------------------------------------
// ScopedTimer + fake clock
// ---------------------------------------------------------------

TEST(ScopedTimer, RecordsExactDurationWithFakeClock)
{
    ClockGuard guard;
    obs::StatsRegistry registry(true);
    guard.clock().set(1000);
    {
        obs::ScopedTimer timer("manufacture", registry, nullptr);
        guard.clock().advance(250);
    }
    {
        obs::ScopedTimer timer("manufacture", registry, nullptr);
        guard.clock().advance(750);
    }
    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "time.manufacture_ns");
    EXPECT_EQ(entries[0].kind, obs::StatKind::Distribution);
    EXPECT_EQ(entries[0].count, 2u);
    EXPECT_EQ(entries[0].sum, 1000.0);
    EXPECT_EQ(entries[0].min, 250.0);
    EXPECT_EQ(entries[0].max, 750.0);
}

TEST(ScopedTimer, DisabledRegistryNoTraceRecordsNothing)
{
    ClockGuard guard;
    obs::StatsRegistry registry(false);
    {
        obs::ScopedTimer timer("idle", registry, nullptr);
        guard.clock().advance(99);
    }
    EXPECT_EQ(registry.size(), 0u);
}

TEST(ScopedTimer, EmitsPhaseSpanWhenTracing)
{
    ClockGuard guard;
    obs::StatsRegistry registry(false);
    const std::string path = tempPath("timer_trace.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        guard.clock().set(5000);
        {
            obs::ScopedTimer timer("solve", registry, &trace);
            guard.clock().advance(3000);
        }
        // Tracing alone (registry off) must still record the span.
        EXPECT_EQ(trace.eventCount(), 1u);
        trace.close();
    }
    const Json root = JsonParser(readFile(path)).parse();
    bool found = false;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "X")
            continue;
        EXPECT_EQ(event.at("name").text, "solve");
        EXPECT_EQ(event.at("cat").text, "phase");
        EXPECT_EQ(event.at("dur").number, 3.0); // 3000 ns = 3 us
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ScopedTimer, MacroCompilesAndTargetsGlobalRegistry)
{
    // The global registry starts disabled, so this is the
    // zero-overhead path; the macro must still compile and nest.
    ACC_SCOPED_TIMER("outer");
    {
        ACC_SCOPED_TIMER("inner");
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------

TEST(TraceWriter, BadPathReportsNotOk)
{
    obs::TraceWriter trace("/nonexistent-dir/x/trace.json");
    EXPECT_FALSE(trace.ok());
    trace.span("cat", "span", 0, 1); // must not crash
    trace.close();
}

TEST(TraceWriter, WritesParseableChromeTrace)
{
    ClockGuard guard;
    guard.clock().set(1000000);
    const std::string path = tempPath("trace_basic.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        obs::setCurrentThreadName("main");
        trace.span("phase", "alpha", 1000000, 1005000);
        trace.span("pool", "task", 1002000, 1003000);
        // A span starting before the writer's epoch is clamped, not
        // negative.
        trace.span("phase", "early", 0, 1000500);
        EXPECT_EQ(trace.eventCount(), 3u);
        trace.close();
    }

    const Json root = JsonParser(readFile(path)).parse();
    ASSERT_EQ(root.type, Json::Object);
    EXPECT_EQ(root.at("displayTimeUnit").text, "ms");

    std::size_t spans = 0, metadata = 0;
    for (const Json &event : root.at("traceEvents").items) {
        const std::string ph = event.at("ph").text;
        if (ph == "M") {
            EXPECT_EQ(event.at("name").text, "thread_name");
            EXPECT_EQ(event.at("args").at("name").text, "main");
            ++metadata;
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_EQ(event.at("pid").number, 1.0);
        EXPECT_GE(event.at("ts").number, 0.0);
        EXPECT_GE(event.at("dur").number, 0.0);
        if (event.at("name").text == "alpha") {
            EXPECT_EQ(event.at("ts").number, 0.0);
            EXPECT_EQ(event.at("dur").number, 5.0);
            EXPECT_EQ(event.at("cat").text, "phase");
        }
        ++spans;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(metadata, 1u); // one lane -> one thread_name record
}

TEST(TraceWriter, AssignsOneLanePerThread)
{
    const std::string path = tempPath("trace_threads.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        std::vector<std::thread> threads;
        for (int t = 0; t < 3; ++t)
            threads.emplace_back([&trace, t] {
                obs::setCurrentThreadName("t" + std::to_string(t));
                const std::uint64_t now = obs::nowNs();
                trace.span("test", "work", now, now + 1000);
            });
        for (std::thread &t : threads)
            t.join();
        trace.close();
    }

    const Json root = JsonParser(readFile(path)).parse();
    std::map<double, std::string> lanes; // tid -> thread name
    std::size_t spans = 0;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text == "M")
            lanes[event.at("tid").number] =
                event.at("args").at("name").text;
        else
            ++spans;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(lanes.size(), 3u);
    std::map<std::string, int> names;
    for (const auto &[tid, name] : lanes)
        ++names[name];
    EXPECT_EQ(names.size(), 3u); // t0, t1, t2 each on their own lane
}

TEST(TraceWriter, EmitsCounterAndInstantEvents)
{
    ClockGuard guard;
    guard.clock().set(1000000);
    const std::string path = tempPath("trace_counters.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        obs::setCurrentThreadName("main");
        trace.counter("pool.tasks", 1002000, 7.0);
        trace.counter("pool.tasks", 1004000, 12.0);
        // Pre-epoch timestamps clamp, same as spans.
        trace.counter("syscache.hits", 0, 3.0);
        trace.instant("profiler", "sample", 1003000);
        EXPECT_EQ(trace.eventCount(), 4u);
        trace.close();
    }

    const Json root = JsonParser(readFile(path)).parse();
    std::size_t counters = 0, instants = 0;
    for (const Json &event : root.at("traceEvents").items) {
        const std::string ph = event.at("ph").text;
        if (ph == "C") {
            EXPECT_EQ(event.at("cat").text, "stats");
            EXPECT_GE(event.at("ts").number, 0.0);
            if (event.at("name").text == "pool.tasks" &&
                event.at("ts").number == 2.0)
                EXPECT_EQ(event.at("args").at("value").number, 7.0);
            if (event.at("name").text == "syscache.hits")
                EXPECT_EQ(event.at("ts").number, 0.0); // clamped
            ++counters;
        } else if (ph == "i") {
            EXPECT_EQ(event.at("name").text, "sample");
            EXPECT_EQ(event.at("cat").text, "profiler");
            EXPECT_EQ(event.at("s").text, "t");
            EXPECT_EQ(event.at("ts").number, 3.0);
            ++instants;
        }
    }
    EXPECT_EQ(counters, 3u);
    EXPECT_EQ(instants, 1u);
}

TEST(TraceWriter, CloseIsIdempotent)
{
    const std::string path = tempPath("trace_idem.json");
    obs::TraceWriter trace(path);
    trace.span("a", "b", 0, 1);
    trace.close();
    trace.close();
    const std::string first = readFile(path);
    EXPECT_FALSE(first.empty());
}

TEST(TraceWriter, GlobalOffByDefault)
{
    EXPECT_EQ(obs::TraceWriter::global(), nullptr);
}

// ---------------------------------------------------------------
// ThreadPool instrumentation
// ---------------------------------------------------------------

TEST(ThreadPoolObs, CountsTasksAndBusyTime)
{
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();
    {
        accordion::util::ThreadPool pool(3);
        for (int i = 0; i < 10; ++i)
            pool.submit([] {}).wait();
        pool.parallelFor(0, 100, [](std::size_t) {});
    }
    const Json stats = JsonParser(registry.jsonString()).parse();
    registry.setEnabled(false);

    EXPECT_EQ(stats.at("pool.workers").number, 3.0);
    EXPECT_EQ(stats.at("pool.parallel_fors").number, 1.0);
    // The 10 explicit submits all run on workers; parallelFor tasks
    // may or may not land depending on how fast the caller drains
    // the range, so >= 10 is the strongest portable bound.
    EXPECT_GE(stats.at("pool.tasks").number, 10.0);
    ASSERT_NE(findStat(stats, "pool.worker0.busy_ns"), nullptr);
    ASSERT_NE(findStat(stats, "pool.worker2.busy_ns"), nullptr);
    EXPECT_EQ(findStat(stats, "pool.worker3.busy_ns"), nullptr);
}

TEST(ThreadPoolObs, EmitsOneLifetimeSpanPerWorker)
{
    const std::string path = tempPath("trace_pool.json");
    ASSERT_TRUE(obs::TraceWriter::openGlobal(path));
    {
        accordion::util::ThreadPool pool(3);
        for (int i = 0; i < 5; ++i)
            pool.submit([] {}).wait();
    } // pool destruction flushes the worker lifetime spans
    obs::TraceWriter::closeGlobal();
    EXPECT_EQ(obs::TraceWriter::global(), nullptr);

    const Json root = JsonParser(readFile(path)).parse();
    std::size_t workers = 0, tasks = 0;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "X")
            continue;
        if (event.at("name").text == "worker")
            ++workers;
        if (event.at("name").text == "task")
            ++tasks;
    }
    EXPECT_EQ(workers, 3u); // exactly one per pool worker
    EXPECT_GE(tasks, 5u);
}

// ---------------------------------------------------------------
// util::log thread safety (satellite bugfix)
// ---------------------------------------------------------------

TEST(LogThreadSafety, ConcurrentWarnLinesNeverInterleave)
{
    constexpr int kThreads = 8;
    constexpr int kLines = 200;

    testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < kLines; ++i)
                accordion::util::warn("stress %d %d", t, i);
        });
    for (std::thread &t : threads)
        t.join();
    const std::string captured = testing::internal::GetCapturedStderr();

    // Every line must be exactly "warn: stress <t> <i>" — any torn
    // or interleaved write breaks the pattern.
    std::istringstream in(captured);
    std::string line;
    std::size_t good = 0;
    while (std::getline(in, line)) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(), "warn: stress %d %d", &t,
                              &i), 2)
            << "torn line: '" << line << "'";
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kLines);
        ++good;
    }
    EXPECT_EQ(good, static_cast<std::size_t>(kThreads * kLines));
}

} // namespace
