/**
 * @file
 * Tests of the instrumentation layer (src/obs/): the stats registry
 * contract (get-or-create, kind mismatch aborts, disabled handles
 * are free no-ops, reset keeps gauges), scoped phase timers against
 * an injected fake clock, the Chrome-trace writer (output is parsed
 * back with a small JSON parser defined below), the thread pool's
 * spans and counters, and the thread-safety of util::log.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace obs = accordion::obs;

namespace {

// ---------------------------------------------------------------
// A minimal JSON reader, enough to parse back trace files and
// run-summary objects: objects, arrays, strings (with \" and \\
// escapes), numbers, true/false/null.
// ---------------------------------------------------------------

struct Json
{
    enum Type { Null, Bool, Number, String, Array, Object };

    Type type = Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Json> items;
    std::map<std::string, Json> fields;

    const Json &at(const std::string &key) const
    {
        auto it = fields.find(key);
        if (it == fields.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }

    bool has(const std::string &key) const
    {
        return fields.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json parse()
    {
        Json value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing garbage");
        return value;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' got '" + text_[pos_] + "'");
        ++pos_;
    }

    Json parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            Json v;
            v.type = Json::String;
            v.text = parseString();
            return v;
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            Json v;
            v.type = Json::Bool;
            v.boolean = true;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            Json v;
            v.type = Json::Bool;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Json{};
        }
        return parseNumber();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    throw std::runtime_error("bad escape");
                c = text_[pos_++];
                switch (c) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u':
                    // \uXXXX: decode as a raw byte; the writer only
                    // emits these for control characters.
                    c = static_cast<char>(
                        std::stoi(text_.substr(pos_, 4), nullptr, 16));
                    pos_ += 4;
                    break;
                default: break; // \" \\ \/ keep c as-is
                }
            }
            out += c;
        }
        expect('"');
        return out;
    }

    Json parseNumber()
    {
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            throw std::runtime_error("bad number");
        Json v;
        v.type = Json::Number;
        v.number = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    Json parseArray()
    {
        expect('[');
        Json v;
        v.type = Json::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or ] in array");
        }
    }

    Json parseObject()
    {
        expect('{');
        Json v;
        v.type = Json::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            const std::string key = parseString();
            expect(':');
            v.fields[key] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                throw std::runtime_error("expected , or } in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + leaf;
}

/** Deterministic test clock: returns a settable value. */
class FakeClock : public obs::Clock
{
  public:
    std::uint64_t nowNs() const override { return now_; }
    void set(std::uint64_t ns) { now_ = ns; }
    void advance(std::uint64_t ns) { now_ += ns; }

  private:
    std::uint64_t now_ = 0;
};

/** Installs a FakeClock for the test's lifetime. */
class ClockGuard
{
  public:
    ClockGuard() { obs::setClock(&clock_); }
    ~ClockGuard() { obs::setClock(nullptr); }
    FakeClock &clock() { return clock_; }

  private:
    FakeClock clock_;
};

const Json *
findStat(const Json &stats, const std::string &name)
{
    auto it = stats.fields.find(name);
    return it == stats.fields.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------

TEST(StatsRegistry, RegisterIncrementSnapshot)
{
    obs::StatsRegistry registry(true);
    obs::Counter hits = registry.counter("cache.hits");
    obs::Gauge level = registry.gauge("pool.workers");
    obs::Distribution dur = registry.distribution("time.phase_ns");

    hits.inc();
    hits.add(41);
    level.set(8.0);
    dur.add(10.0);
    dur.add(30.0);

    EXPECT_EQ(hits.value(), 42u);
    EXPECT_EQ(level.value(), 8.0);
    EXPECT_EQ(registry.size(), 3u);

    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 3u);
    // Sorted by name.
    EXPECT_EQ(entries[0].name, "cache.hits");
    EXPECT_EQ(entries[0].kind, obs::StatKind::Counter);
    EXPECT_EQ(entries[0].count, 42u);
    EXPECT_EQ(entries[1].name, "pool.workers");
    EXPECT_EQ(entries[1].kind, obs::StatKind::Gauge);
    EXPECT_EQ(entries[1].value, 8.0);
    EXPECT_EQ(entries[2].name, "time.phase_ns");
    EXPECT_EQ(entries[2].kind, obs::StatKind::Distribution);
    EXPECT_EQ(entries[2].count, 2u);
    EXPECT_EQ(entries[2].sum, 40.0);
    EXPECT_EQ(entries[2].min, 10.0);
    EXPECT_EQ(entries[2].max, 30.0);
    EXPECT_EQ(entries[2].mean(), 20.0);
}

TEST(StatsRegistry, GetOrCreateSharesTheCell)
{
    obs::StatsRegistry registry(true);
    obs::Counter a = registry.counter("pool.tasks");
    obs::Counter b = registry.counter("pool.tasks");
    a.inc();
    b.inc();
    EXPECT_EQ(a.value(), 2u);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(StatsRegistryDeathTest, KindMismatchAborts)
{
    obs::StatsRegistry registry(true);
    registry.counter("x.count");
    EXPECT_DEATH(registry.gauge("x.count"), "x.count");
}

TEST(StatsRegistry, DisabledHandlesAreNoOps)
{
    obs::StatsRegistry registry(false);
    obs::Counter c = registry.counter("a");
    obs::Gauge g = registry.gauge("b");
    obs::Distribution d = registry.distribution("c");
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(d));
    c.inc();
    g.set(5.0);
    d.add(1.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(registry.size(), 0u);
    EXPECT_TRUE(registry.snapshot().empty());
}

TEST(StatsRegistry, ResetZeroesCountersButKeepsGauges)
{
    obs::StatsRegistry registry(true);
    obs::Counter c = registry.counter("events");
    obs::Gauge g = registry.gauge("workers");
    obs::Distribution d = registry.distribution("time.x_ns");
    c.add(7);
    g.set(4.0);
    d.add(3.0);

    registry.reset();

    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 4.0); // levels survive
    const auto entries = registry.snapshot();
    for (const obs::StatEntry &e : entries)
        if (e.name == "time.x_ns")
            EXPECT_EQ(e.count, 0u);
    // Handles stay live after reset.
    c.inc();
    EXPECT_EQ(c.value(), 1u);
}

TEST(StatsRegistry, JsonDumpParsesBack)
{
    obs::StatsRegistry registry(true);
    registry.counter("montecarlo.samples").add(1000);
    registry.gauge("pool.utilization.mean").set(0.75);
    obs::Distribution d = registry.distribution("time.sweep_ns");
    d.add(5.0);
    d.add(15.0);

    const Json root = JsonParser(registry.jsonString()).parse();
    ASSERT_EQ(root.type, Json::Object);
    EXPECT_EQ(root.at("montecarlo.samples").number, 1000.0);
    EXPECT_EQ(root.at("pool.utilization.mean").number, 0.75);
    const Json &dist = root.at("time.sweep_ns");
    ASSERT_EQ(dist.type, Json::Object);
    EXPECT_EQ(dist.at("count").number, 2.0);
    EXPECT_EQ(dist.at("sum").number, 20.0);
    EXPECT_EQ(dist.at("min").number, 5.0);
    EXPECT_EQ(dist.at("max").number, 15.0);
    EXPECT_EQ(dist.at("mean").number, 10.0);
}

TEST(StatsRegistry, CountersAreAtomicAcrossThreads)
{
    obs::StatsRegistry registry(true);
    obs::Counter c = registry.counter("contended");
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i)
                c.inc();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 80000u);
}

// ---------------------------------------------------------------
// ScopedTimer + fake clock
// ---------------------------------------------------------------

TEST(ScopedTimer, RecordsExactDurationWithFakeClock)
{
    ClockGuard guard;
    obs::StatsRegistry registry(true);
    guard.clock().set(1000);
    {
        obs::ScopedTimer timer("manufacture", registry, nullptr);
        guard.clock().advance(250);
    }
    {
        obs::ScopedTimer timer("manufacture", registry, nullptr);
        guard.clock().advance(750);
    }
    const auto entries = registry.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].name, "time.manufacture_ns");
    EXPECT_EQ(entries[0].kind, obs::StatKind::Distribution);
    EXPECT_EQ(entries[0].count, 2u);
    EXPECT_EQ(entries[0].sum, 1000.0);
    EXPECT_EQ(entries[0].min, 250.0);
    EXPECT_EQ(entries[0].max, 750.0);
}

TEST(ScopedTimer, DisabledRegistryNoTraceRecordsNothing)
{
    ClockGuard guard;
    obs::StatsRegistry registry(false);
    {
        obs::ScopedTimer timer("idle", registry, nullptr);
        guard.clock().advance(99);
    }
    EXPECT_EQ(registry.size(), 0u);
}

TEST(ScopedTimer, EmitsPhaseSpanWhenTracing)
{
    ClockGuard guard;
    obs::StatsRegistry registry(false);
    const std::string path = tempPath("timer_trace.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        guard.clock().set(5000);
        {
            obs::ScopedTimer timer("solve", registry, &trace);
            guard.clock().advance(3000);
        }
        // Tracing alone (registry off) must still record the span.
        EXPECT_EQ(trace.eventCount(), 1u);
        trace.close();
    }
    const Json root = JsonParser(readFile(path)).parse();
    bool found = false;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "X")
            continue;
        EXPECT_EQ(event.at("name").text, "solve");
        EXPECT_EQ(event.at("cat").text, "phase");
        EXPECT_EQ(event.at("dur").number, 3.0); // 3000 ns = 3 us
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(ScopedTimer, MacroCompilesAndTargetsGlobalRegistry)
{
    // The global registry starts disabled, so this is the
    // zero-overhead path; the macro must still compile and nest.
    ACC_SCOPED_TIMER("outer");
    {
        ACC_SCOPED_TIMER("inner");
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// TraceWriter
// ---------------------------------------------------------------

TEST(TraceWriter, BadPathReportsNotOk)
{
    obs::TraceWriter trace("/nonexistent-dir/x/trace.json");
    EXPECT_FALSE(trace.ok());
    trace.span("cat", "span", 0, 1); // must not crash
    trace.close();
}

TEST(TraceWriter, WritesParseableChromeTrace)
{
    ClockGuard guard;
    guard.clock().set(1000000);
    const std::string path = tempPath("trace_basic.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        obs::setCurrentThreadName("main");
        trace.span("phase", "alpha", 1000000, 1005000);
        trace.span("pool", "task", 1002000, 1003000);
        // A span starting before the writer's epoch is clamped, not
        // negative.
        trace.span("phase", "early", 0, 1000500);
        EXPECT_EQ(trace.eventCount(), 3u);
        trace.close();
    }

    const Json root = JsonParser(readFile(path)).parse();
    ASSERT_EQ(root.type, Json::Object);
    EXPECT_EQ(root.at("displayTimeUnit").text, "ms");

    std::size_t spans = 0, metadata = 0;
    for (const Json &event : root.at("traceEvents").items) {
        const std::string ph = event.at("ph").text;
        if (ph == "M") {
            EXPECT_EQ(event.at("name").text, "thread_name");
            EXPECT_EQ(event.at("args").at("name").text, "main");
            ++metadata;
            continue;
        }
        ASSERT_EQ(ph, "X");
        EXPECT_EQ(event.at("pid").number, 1.0);
        EXPECT_GE(event.at("ts").number, 0.0);
        EXPECT_GE(event.at("dur").number, 0.0);
        if (event.at("name").text == "alpha") {
            EXPECT_EQ(event.at("ts").number, 0.0);
            EXPECT_EQ(event.at("dur").number, 5.0);
            EXPECT_EQ(event.at("cat").text, "phase");
        }
        ++spans;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(metadata, 1u); // one lane -> one thread_name record
}

TEST(TraceWriter, AssignsOneLanePerThread)
{
    const std::string path = tempPath("trace_threads.json");
    {
        obs::TraceWriter trace(path);
        ASSERT_TRUE(trace.ok());
        std::vector<std::thread> threads;
        for (int t = 0; t < 3; ++t)
            threads.emplace_back([&trace, t] {
                obs::setCurrentThreadName("t" + std::to_string(t));
                const std::uint64_t now = obs::nowNs();
                trace.span("test", "work", now, now + 1000);
            });
        for (std::thread &t : threads)
            t.join();
        trace.close();
    }

    const Json root = JsonParser(readFile(path)).parse();
    std::map<double, std::string> lanes; // tid -> thread name
    std::size_t spans = 0;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text == "M")
            lanes[event.at("tid").number] =
                event.at("args").at("name").text;
        else
            ++spans;
    }
    EXPECT_EQ(spans, 3u);
    EXPECT_EQ(lanes.size(), 3u);
    std::map<std::string, int> names;
    for (const auto &[tid, name] : lanes)
        ++names[name];
    EXPECT_EQ(names.size(), 3u); // t0, t1, t2 each on their own lane
}

TEST(TraceWriter, CloseIsIdempotent)
{
    const std::string path = tempPath("trace_idem.json");
    obs::TraceWriter trace(path);
    trace.span("a", "b", 0, 1);
    trace.close();
    trace.close();
    const std::string first = readFile(path);
    EXPECT_FALSE(first.empty());
}

TEST(TraceWriter, GlobalOffByDefault)
{
    EXPECT_EQ(obs::TraceWriter::global(), nullptr);
}

// ---------------------------------------------------------------
// ThreadPool instrumentation
// ---------------------------------------------------------------

TEST(ThreadPoolObs, CountsTasksAndBusyTime)
{
    obs::StatsRegistry &registry = obs::StatsRegistry::global();
    registry.setEnabled(true);
    registry.reset();
    {
        accordion::util::ThreadPool pool(3);
        for (int i = 0; i < 10; ++i)
            pool.submit([] {}).wait();
        pool.parallelFor(0, 100, [](std::size_t) {});
    }
    const Json stats = JsonParser(registry.jsonString()).parse();
    registry.setEnabled(false);

    EXPECT_EQ(stats.at("pool.workers").number, 3.0);
    EXPECT_EQ(stats.at("pool.parallel_fors").number, 1.0);
    // The 10 explicit submits all run on workers; parallelFor tasks
    // may or may not land depending on how fast the caller drains
    // the range, so >= 10 is the strongest portable bound.
    EXPECT_GE(stats.at("pool.tasks").number, 10.0);
    ASSERT_NE(findStat(stats, "pool.worker0.busy_ns"), nullptr);
    ASSERT_NE(findStat(stats, "pool.worker2.busy_ns"), nullptr);
    EXPECT_EQ(findStat(stats, "pool.worker3.busy_ns"), nullptr);
}

TEST(ThreadPoolObs, EmitsOneLifetimeSpanPerWorker)
{
    const std::string path = tempPath("trace_pool.json");
    ASSERT_TRUE(obs::TraceWriter::openGlobal(path));
    {
        accordion::util::ThreadPool pool(3);
        for (int i = 0; i < 5; ++i)
            pool.submit([] {}).wait();
    } // pool destruction flushes the worker lifetime spans
    obs::TraceWriter::closeGlobal();
    EXPECT_EQ(obs::TraceWriter::global(), nullptr);

    const Json root = JsonParser(readFile(path)).parse();
    std::size_t workers = 0, tasks = 0;
    for (const Json &event : root.at("traceEvents").items) {
        if (event.at("ph").text != "X")
            continue;
        if (event.at("name").text == "worker")
            ++workers;
        if (event.at("name").text == "task")
            ++tasks;
    }
    EXPECT_EQ(workers, 3u); // exactly one per pool worker
    EXPECT_GE(tasks, 5u);
}

// ---------------------------------------------------------------
// util::log thread safety (satellite bugfix)
// ---------------------------------------------------------------

TEST(LogThreadSafety, ConcurrentWarnLinesNeverInterleave)
{
    constexpr int kThreads = 8;
    constexpr int kLines = 200;

    testing::internal::CaptureStderr();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < kLines; ++i)
                accordion::util::warn("stress %d %d", t, i);
        });
    for (std::thread &t : threads)
        t.join();
    const std::string captured = testing::internal::GetCapturedStderr();

    // Every line must be exactly "warn: stress <t> <i>" — any torn
    // or interleaved write breaks the pattern.
    std::istringstream in(captured);
    std::string line;
    std::size_t good = 0;
    while (std::getline(in, line)) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(), "warn: stress %d %d", &t,
                              &i), 2)
            << "torn line: '" << line << "'";
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kLines);
        ++good;
    }
    EXPECT_EQ(good, static_cast<std::size_t>(kThreads * kLines));
}

} // namespace
