/**
 * @file
 * Tests of the SRAM VddMIN model and the per-core timing-error
 * model (the two halves of the VARIUS-NTV substitute).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "vartech/sram.hpp"
#include "vartech/technology.hpp"
#include "vartech/timing.hpp"

using namespace accordion::vartech;

namespace {
const Technology &
tech()
{
    static const Technology t = Technology::makeItrs11nm();
    return t;
}

CoreTimingModel
makeCore(double vth_dev, double sigma_rand = 0.116)
{
    return CoreTimingModel(tech(), TimingModelParams{}, vth_dev, 0.0,
                           sigma_rand);
}
} // namespace

TEST(Sram, CellFailureDecreasesWithVdd)
{
    SramBlockModel block(SramParams{}, 1 << 20, 0.0, 0.0);
    double prev = 1.0;
    for (double vdd = 0.40; vdd <= 0.70; vdd += 0.05) {
        const double p = block.cellFailureProbability(vdd);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(Sram, VddMinIsFunctionalBoundary)
{
    SramParams params;
    SramBlockModel block(params, 1 << 22, 0.0, 0.0);
    const double vmin = block.vddMin();
    // Exactly at VddMIN the expected failing cells equal the
    // redundancy budget.
    const double mbits = (1 << 22) / (1024.0 * 1024.0);
    const double repairable =
        params.redundancyPerSqrtMbit * std::sqrt(mbits);
    const double expected_failures =
        block.cellFailureProbability(vmin) * (1 << 22);
    EXPECT_NEAR(expected_failures, repairable, repairable * 0.01);
}

TEST(Sram, HigherVthRaisesVddMin)
{
    SramBlockModel weak(SramParams{}, 1 << 20, 0.03, 0.0);
    SramBlockModel nominal(SramParams{}, 1 << 20, 0.0, 0.0);
    SramBlockModel strong(SramParams{}, 1 << 20, -0.03, 0.0);
    EXPECT_GT(weak.vddMin(), nominal.vddMin());
    EXPECT_GT(nominal.vddMin(), strong.vddMin());
    // Shift tracks kVth linearly.
    EXPECT_NEAR(weak.vddMin() - nominal.vddMin(),
                SramParams{}.kVth * 0.03, 1e-9);
}

TEST(Sram, LargerBlocksNeedHigherVdd)
{
    // Same redundancy density but more cells -> tighter per-cell
    // failure requirement -> higher VddMIN... per-Mbit redundancy
    // keeps the required *rate* constant, so the shift comes from
    // the quantile of the rate, which is equal; use an absolute
    // redundancy contrast instead.
    SramParams sparse;
    sparse.redundancyPerSqrtMbit = 2.0;
    SramParams dense;
    dense.redundancyPerSqrtMbit = 200.0;
    SramBlockModel tight(sparse, 1 << 24, 0.0, 0.0);
    SramBlockModel loose(dense, 1 << 24, 0.0, 0.0);
    EXPECT_GT(tight.vddMin(), loose.vddMin());
}

TEST(Sram, NominalVddMinInNearThresholdRange)
{
    // Fig. 5a: per-cluster VddMIN lands in 0.46-0.58 V; a nominal
    // block sits near the bottom of that band.
    SramBlockModel private_mem(SramParams{}, 64ull * 1024 * 8, 0.0,
                               0.0);
    SramBlockModel cluster_mem(SramParams{},
                               2ull * 1024 * 1024 * 8, 0.0, 0.0);
    EXPECT_GT(private_mem.vddMin(), 0.42);
    EXPECT_LT(cluster_mem.vddMin(), 0.52);
    EXPECT_GT(cluster_mem.vddMin(), private_mem.vddMin());
}

TEST(Timing, ErrorRateMonotoneInFrequency)
{
    const CoreTimingModel core = makeCore(0.0);
    double prev = 0.0;
    for (double f = 0.3e9; f <= 2.0e9; f += 0.1e9) {
        const double perr = core.errorRate(0.55, f);
        EXPECT_GE(perr, prev) << "f=" << f;
        prev = perr;
    }
    EXPECT_GT(prev, 0.99); // saturates at 1 for fast clocks
}

TEST(Timing, ErrorRateSpansManyDecades)
{
    // Fig. 5b's y axis runs from below 1e-16 up to 1.
    const CoreTimingModel core = makeCore(0.0);
    EXPECT_LT(core.errorRate(0.55, 0.4e9), 1e-16);
    EXPECT_GT(core.errorRate(0.55, 1.5e9), 0.9);
}

TEST(Timing, SafeFrequencyRespectsThreshold)
{
    const CoreTimingModel core = makeCore(0.0);
    const double f_safe = core.safeFrequency(0.55);
    EXPECT_LE(core.errorRate(0.55, f_safe),
              core.params().perrSafe * 1.01);
    EXPECT_GT(core.errorRate(0.55, f_safe * 1.1),
              core.params().perrSafe);
}

TEST(Timing, SafeBelowMeanPathFrequency)
{
    const CoreTimingModel core = makeCore(0.0);
    EXPECT_LT(core.safeFrequency(0.55), core.meanPathFrequency(0.55));
}

TEST(Timing, FrequencyForErrorRateInvertsErrorRate)
{
    const CoreTimingModel core = makeCore(0.05);
    for (double perr : {1e-12, 1e-9, 1e-6, 1e-4}) {
        const double f = core.frequencyForErrorRate(0.55, perr);
        EXPECT_NEAR(std::log10(core.errorRate(0.55, f)),
                    std::log10(perr), 0.05)
            << "perr=" << perr;
    }
}

TEST(Timing, SpeculationBuysFrequency)
{
    // Section 6.3: operating at a higher error rate buys 8-41% f.
    const CoreTimingModel core = makeCore(0.1);
    const double f_safe = core.safeFrequency(0.55);
    const double f_spec = core.frequencyForErrorRate(0.55, 1e-6);
    const double gain = f_spec / f_safe - 1.0;
    EXPECT_GT(gain, 0.05);
    EXPECT_LT(gain, 0.50);
}

TEST(Timing, SlowerAtLowerVdd)
{
    const CoreTimingModel core = makeCore(0.0);
    EXPECT_LT(core.safeFrequency(0.50), core.safeFrequency(0.55));
    EXPECT_LT(core.safeFrequency(0.55), core.safeFrequency(0.70));
}

TEST(Timing, HighVthCoreIsSlowerAndMoreErrorProne)
{
    const CoreTimingModel slow = makeCore(0.15);
    const CoreTimingModel fast = makeCore(-0.15);
    EXPECT_LT(slow.safeFrequency(0.55), fast.safeFrequency(0.55));
    const double f = 0.6e9;
    EXPECT_GT(slow.errorRate(0.55, f), fast.errorRate(0.55, f));
}

TEST(Timing, MostCoresCannotReachNominalFrequency)
{
    // Section 6.1: even at Perr in [1e-16, 1e-12] the majority of
    // cores cannot run at the NTV nominal 1 GHz.
    const CoreTimingModel core = makeCore(0.0);
    EXPECT_GT(core.errorRate(0.55, 1.0e9), 1e-12);
}

TEST(Timing, RejectsDegenerateErrorTargets)
{
    const CoreTimingModel core = makeCore(0.0);
    EXPECT_EXIT(core.frequencyForErrorRate(0.55, 0.0),
                ::testing::ExitedWithCode(1), "perr");
    EXPECT_EXIT(core.frequencyForErrorRate(0.55, 1.0),
                ::testing::ExitedWithCode(1), "perr");
}

TEST(Timing, ClosedFormMatchesBisectionOracle)
{
    // Property grid over (vdd, systematic vth_dev, perr): the
    // closed-form inversion must agree with the historical
    // 100-iteration bisection (kept as a test-only oracle) to 1e-9
    // relative everywhere the forward model is defined.
    for (double vdd : {0.45, 0.50, 0.55, 0.65, 0.75}) {
        for (double vth_dev : {-0.15, -0.05, 0.0, 0.05, 0.15}) {
            const CoreTimingModel core = makeCore(vth_dev);
            for (double perr : {1e-16, 1e-14, 1e-12, 1e-9, 1e-6,
                                1e-4, 1e-2, 0.5}) {
                const double closed =
                    core.frequencyForErrorRate(vdd, perr);
                const double oracle =
                    core.frequencyForErrorRateBisect(vdd, perr);
                EXPECT_NEAR(closed / oracle, 1.0, 1e-9)
                    << "vdd=" << vdd << " vth_dev=" << vth_dev
                    << " perr=" << perr;
            }
        }
    }
}

TEST(Timing, DegenerateCoreClampsAtBisectionFloor)
{
    // A hopeless core (huge random path sigma) errors out even at
    // crawl speed. The bisection oracle early-returns its bracket
    // floor of 0.01x the mean-path frequency; the closed form must
    // clamp to the bit-identical value.
    const CoreTimingModel core = makeCore(0.0, 8.0);
    const double vdd = 0.55;
    const double perr = core.params().perrSafe;
    const double floor = 0.01 * core.meanPathFrequency(vdd);
    ASSERT_GT(core.errorRate(vdd, floor), perr)
        << "core not degenerate enough to trigger the clamp";
    EXPECT_EQ(core.frequencyForErrorRateBisect(vdd, perr), floor);
    EXPECT_EQ(core.frequencyForErrorRate(vdd, perr), floor);
}
