/**
 * @file
 * Cross-cutting property sweeps (TEST_P grids) over the model
 * stack: technology invariants across the (Vdd, Vth) plane, timing
 * invariants across operating voltages, performance-model
 * consistency across trait corners, and fault-plan arithmetic
 * across fractions and thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "fault/fault.hpp"
#include "manycore/perf_model.hpp"
#include "vartech/technology.hpp"
#include "vartech/timing.hpp"

using namespace accordion;
using namespace accordion::vartech;

namespace {
const Technology &
tech()
{
    static const Technology t = Technology::makeItrs11nm();
    return t;
}
} // namespace

// ---------------------------------------------------------------
// Technology invariants across the (Vdd, Vth) grid.

class TechGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    double vdd() const { return std::get<0>(GetParam()); }
    double vth() const { return std::get<1>(GetParam()); }
};

TEST_P(TechGridTest, DriveDelayFrequencyAreConsistent)
{
    const double f = tech().frequency(vdd(), vth());
    const double d = tech().relativeDelay(vdd(), vth());
    EXPECT_GT(f, 0.0);
    EXPECT_GT(d, 0.0);
    // frequency x relativeDelay is the nominal-corner frequency for
    // every operating point: f = fNom / relativeDelay.
    EXPECT_NEAR(f * d, tech().fNtv(), tech().fNtv() * 1e-9);
}

TEST_P(TechGridTest, PowerComponentsPositiveAndMonotone)
{
    const double f = tech().frequency(vdd(), vth());
    EXPECT_GT(tech().dynamicPower(vdd(), f), 0.0);
    EXPECT_GT(tech().staticPower(vdd(), vth()), 0.0);
    // More voltage leaks more (DIBL), higher Vth leaks less.
    EXPECT_GT(tech().staticPower(vdd() + 0.05, vth()),
              tech().staticPower(vdd(), vth()));
    EXPECT_LT(tech().staticPower(vdd(), vth() + 0.02),
              tech().staticPower(vdd(), vth()));
}

TEST_P(TechGridTest, SensitivityPositiveAndGrowsTowardVth)
{
    const double s = tech().delayVthSensitivity(vdd(), vth());
    EXPECT_GT(s, 0.0);
    EXPECT_GT(tech().delayVthSensitivity(vdd() - 0.03, vth()), s);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TechGridTest,
    ::testing::Combine(::testing::Values(0.45, 0.55, 0.7, 0.9, 1.1),
                       ::testing::Values(0.28, 0.33, 0.38)),
    [](const auto &info) {
        return "vdd" +
            std::to_string(static_cast<int>(
                std::get<0>(info.param) * 100)) +
            "_vth" +
            std::to_string(static_cast<int>(
                std::get<1>(info.param) * 100));
    });

// ---------------------------------------------------------------
// Timing-model invariants across operating voltages.

class TimingVddTest : public ::testing::TestWithParam<double>
{
  protected:
    CoreTimingModel
    core(double vth_dev = 0.05) const
    {
        return CoreTimingModel(tech(), TimingModelParams{}, vth_dev,
                               0.02, 0.116);
    }
};

TEST_P(TimingVddTest, SafeFrequencyBelowMeanPath)
{
    const double vdd = GetParam();
    const auto c = core();
    EXPECT_LT(c.safeFrequency(vdd), c.meanPathFrequency(vdd));
    EXPECT_GT(c.safeFrequency(vdd), 0.0);
}

TEST_P(TimingVddTest, ErrorRateWithinProbabilityBounds)
{
    const double vdd = GetParam();
    const auto c = core();
    for (double f = 0.1e9; f <= 3.0e9; f += 0.29e9) {
        const double perr = c.errorRate(vdd, f);
        EXPECT_GE(perr, 0.0) << "f=" << f;
        EXPECT_LE(perr, 1.0) << "f=" << f;
    }
}

TEST_P(TimingVddTest, SpeculationOrderedByErrorBudget)
{
    const double vdd = GetParam();
    const auto c = core();
    double prev = 0.0;
    for (double perr : {1e-12, 1e-9, 1e-6, 1e-3}) {
        const double f = c.frequencyForErrorRate(vdd, perr);
        EXPECT_GT(f, prev) << "perr=" << perr;
        prev = f;
    }
}

INSTANTIATE_TEST_SUITE_P(Vdd, TimingVddTest,
                         ::testing::Values(0.50, 0.55, 0.60, 0.70),
                         [](const auto &info) {
                             return "v" +
                                 std::to_string(static_cast<int>(
                                     info.param * 100));
                         });

// ---------------------------------------------------------------
// Performance-model consistency across trait corners.

struct TraitCorner
{
    const char *name;
    manycore::WorkloadTraits traits;
};

class PerfTraitsTest : public ::testing::TestWithParam<TraitCorner>
{
  protected:
    vartech::ChipGeometry geometry_;
    manycore::AnalyticPerfModel analytic_;
    manycore::EventDrivenPerfModel event_;
};

TEST_P(PerfTraitsTest, ModelsAgreeAcrossCorners)
{
    manycore::TaskSet tasks;
    tasks.numTasks = 32;
    tasks.instrPerTask = 30000;
    std::vector<std::size_t> cores(32);
    std::iota(cores.begin(), cores.end(), 0);
    const double a =
        analytic_.estimate(geometry_, cores, 0.5e9, tasks,
                           GetParam().traits)
            .seconds;
    const double e =
        event_.estimate(geometry_, cores, 0.5e9, tasks,
                        GetParam().traits)
            .seconds;
    EXPECT_GT(a, 0.0);
    EXPECT_NEAR(a / e, 1.0, 0.3) << GetParam().name;
}

TEST_P(PerfTraitsTest, WorkScalesLinearlyAtFixedMachine)
{
    std::vector<std::size_t> cores(16);
    std::iota(cores.begin(), cores.end(), 0);
    manycore::TaskSet small;
    small.numTasks = 16;
    small.instrPerTask = 20000;
    manycore::TaskSet big = small;
    big.instrPerTask = 80000;
    const double t_small =
        analytic_.estimate(geometry_, cores, 0.6e9, small,
                           GetParam().traits)
            .seconds;
    const double t_big =
        analytic_.estimate(geometry_, cores, 0.6e9, big,
                           GetParam().traits)
            .seconds;
    EXPECT_NEAR(t_big / t_small, 4.0, 0.2) << GetParam().name;
}

namespace {
TraitCorner
corner(const char *name, double mem, double miss, double overlap)
{
    TraitCorner c;
    c.name = name;
    c.traits.memOpsPerInstr = mem;
    c.traits.privateMissRate = miss;
    c.traits.overlapFactor = overlap;
    return c;
}
} // namespace

INSTANTIATE_TEST_SUITE_P(
    Corners, PerfTraitsTest,
    // Corners stay inside the regime where the M/D/1 closed-form
    // tracks the closed-loop event simulation; a fully saturated
    // bus diverges by construction (queueing becomes unbounded in
    // the open-loop approximation).
    ::testing::Values(corner("compute_bound", 0.05, 0.005, 0.8),
                      corner("balanced", 0.25, 0.03, 0.5),
                      corner("memory_bound", 0.38, 0.06, 0.25)),
    [](const auto &info) { return info.param.name; });

// ---------------------------------------------------------------
// Fault-plan arithmetic across fractions and thread counts.

class FaultGridTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>>
{
};

TEST_P(FaultGridTest, InfectedCountMatchesFraction)
{
    const double fraction = std::get<0>(GetParam());
    const std::size_t threads = std::get<1>(GetParam());
    const fault::FaultPlan plan(fault::ErrorMode::Drop, fraction);
    std::size_t infected = 0;
    for (std::size_t t = 0; t < threads; ++t)
        infected += plan.infected(t, threads);
    EXPECT_EQ(infected, plan.infectedCount(threads));
    EXPECT_EQ(infected,
              static_cast<std::size_t>(std::floor(
                  fraction * static_cast<double>(threads))));
}

TEST_P(FaultGridTest, InfectionUniformAcrossHalves)
{
    const double fraction = std::get<0>(GetParam());
    const std::size_t threads = std::get<1>(GetParam());
    if (threads < 8)
        GTEST_SKIP();
    const fault::FaultPlan plan(fault::ErrorMode::Drop, fraction);
    std::size_t first = 0, second = 0;
    for (std::size_t t = 0; t < threads; ++t)
        (t < threads / 2 ? first : second) +=
            plan.infected(t, threads);
    EXPECT_LE(first > second ? first - second : second - first, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultGridTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.75),
                       ::testing::Values<std::size_t>(4, 32, 64,
                                                      100)),
    [](const auto &info) {
        return "f" +
            std::to_string(static_cast<int>(
                std::get<0>(info.param) * 100)) +
            "_t" + std::to_string(std::get<1>(info.param));
    });
