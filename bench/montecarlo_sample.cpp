/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/montecarlo_sample.cpp; this binary keeps the legacy
 * invocation (`bench/montecarlo_sample [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * montecarlo_sample`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("montecarlo_sample");
}
