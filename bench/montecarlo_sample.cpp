/**
 * @file
 * Monte Carlo evaluation over the paper's 100-chip sample (Table 2
 * lists "Sample size: 100 chips"): distribution of the chip-level
 * reliability metrics and of the headline energy-efficiency gain
 * across manufacturing outcomes — how much the Accordion result
 * depends on the die you happen to get.
 */

#include "common.hpp"
#include "core/accordion.hpp"
#include "core/montecarlo.hpp"

using namespace accordion;

int
main()
{
    util::setVerbose(false);
    bench::banner("Monte Carlo — the 100-chip manufacturing sample",
                  "Table 2: sample size 100 chips; results hold "
                  "across the sample, not just one die");

    core::AccordionSystem system;
    const core::MonteCarloEvaluator mc(system.factory(), 100);

    util::Table table({"metric", "mean", "sigma", "min", "p10",
                       "p90", "max"});
    auto csv = bench::csvFor("montecarlo_sample",
                             {"metric", "mean", "sigma", "min",
                              "max"});
    auto add = [&](const core::SampleStatistics &s, double scale,
                   const char *unit) {
        table.addRow({s.metric + std::string(" ") + unit,
                      util::format("%.3f", s.mean * scale),
                      util::format("%.3f", s.stddev * scale),
                      util::format("%.3f", s.min * scale),
                      util::format("%.3f", s.p10 * scale),
                      util::format("%.3f", s.p90 * scale),
                      util::format("%.3f", s.max * scale)});
        csv.addRow({s.metric, util::format("%.5g", s.mean * scale),
                    util::format("%.5g", s.stddev * scale),
                    util::format("%.5g", s.min * scale),
                    util::format("%.5g", s.max * scale)});
    };

    add(mc.evaluate("VddNTV",
                    [](const vartech::VariationChip &chip) {
                        return chip.vddNtv();
                    }),
        1.0, "(V)");
    add(mc.evaluate("slowest cluster safe f",
                    [](const vartech::VariationChip &chip) {
                        double f = 1e300;
                        for (std::size_t k = 0;
                             k < chip.numClusters(); ++k)
                            f = std::min(f, chip.clusterSafeF(k));
                        return f;
                    }),
        1e-9, "(GHz)");
    add(mc.evaluate("fastest cluster safe f",
                    [](const vartech::VariationChip &chip) {
                        double f = 0.0;
                        for (std::size_t k = 0;
                             k < chip.numClusters(); ++k)
                            f = std::max(f, chip.clusterSafeF(k));
                        return f;
                    }),
        1e-9, "(GHz)");

    // Headline gain distribution over a 20-chip subsample (the
    // pareto sweep per chip is the expensive part).
    const core::MonteCarloEvaluator mc20(system.factory(), 20);
    const auto &w = rms::findWorkload("hotspot");
    const auto &profile = system.profile("hotspot");
    add(mc20.efficiencyGainDistribution(
            w, profile, system.powerModel(), system.perfModel(),
            core::Flavor::Speculative, 0.0),
        1.0, "(x STV, 20 chips)");

    std::printf("%s", table.render().c_str());
    std::printf("\nevery chip of the sample yields a > 1x gain: the "
                "headline is a property of the approach, not of a "
                "lucky die\n");
    return 0;
}
