/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/table3_characterization.cpp; this binary keeps the legacy
 * invocation (`bench/table3_characterization [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * table3_characterization`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("table3_characterization");
}
