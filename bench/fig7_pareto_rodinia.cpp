/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig7_pareto_rodinia.cpp; this binary keeps the legacy
 * invocation (`bench/fig7_pareto_rodinia [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig7_pareto_rodinia`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig7_pareto_rodinia");
}
