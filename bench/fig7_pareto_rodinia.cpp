/**
 * @file
 * Reproduces Fig. 7: iso-execution-time pareto fronts for the two
 * Rodinia kernels — hotspot and srad.
 */

#include "pareto_bench.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::runParetoBench("7", {"hotspot", "srad"}, argc,
                                     argv);
    return 0;
}
