/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/ext_dynamic_orchestration.cpp; this binary keeps the legacy
 * invocation (`bench/ext_dynamic_orchestration [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * ext_dynamic_orchestration`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("ext_dynamic_orchestration");
}
