/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/headline_energy_efficiency.cpp; this binary keeps the legacy
 * invocation (`bench/headline_energy_efficiency [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * headline_energy_efficiency`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("headline_energy_efficiency");
}
