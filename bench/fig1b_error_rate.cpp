/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig1b_error_rate.cpp; this binary keeps the legacy
 * invocation (`bench/fig1b_error_rate [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig1b_error_rate`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig1b_error_rate");
}
