/**
 * @file
 * google-benchmark microbenchmarks of the substrates themselves:
 * variation-field sampling, chip manufacturing, timing-model
 * queries, the event-driven vs analytic performance models, and the
 * RMS kernels at their default inputs. These guard the simulator's
 * own performance, not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/core_selection.hpp"
#include "manycore/perf_model.hpp"
#include "manycore/power_model.hpp"
#include "rms/workload.hpp"
#include "vartech/variation_chip.hpp"

using namespace accordion;

namespace {

const vartech::Technology &
tech()
{
    static const auto t = vartech::Technology::makeItrs11nm();
    return t;
}

const vartech::ChipFactory &
factory()
{
    static const vartech::ChipFactory f(
        tech(), vartech::ChipFactory::Params{}, 12345);
    return f;
}

const vartech::VariationChip &
chip()
{
    static const auto c = factory().make(0);
    return c;
}

void
BM_ChipManufacture(benchmark::State &state)
{
    std::uint64_t id = 0;
    for (auto _ : state) {
        auto c = factory().make(id++);
        benchmark::DoNotOptimize(c.vddNtv());
    }
}
BENCHMARK(BM_ChipManufacture);

void
BM_SafeFrequencyQuery(benchmark::State &state)
{
    const auto &timing = chip().coreTiming(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(timing.safeFrequency(0.55));
}
BENCHMARK(BM_SafeFrequencyQuery);

void
BM_ErrorRateQuery(benchmark::State &state)
{
    const auto &timing = chip().coreTiming(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(timing.errorRate(0.55, 0.7e9));
}
BENCHMARK(BM_ErrorRateQuery);

void
BM_PerfModel(benchmark::State &state)
{
    const bool event_driven = state.range(0) != 0;
    const manycore::EventDrivenPerfModel event;
    const manycore::AnalyticPerfModel analytic;
    const manycore::PerfModel &model =
        event_driven ? static_cast<const manycore::PerfModel &>(event)
                     : analytic;
    std::vector<std::size_t> cores(64);
    for (std::size_t i = 0; i < cores.size(); ++i)
        cores[i] = i;
    manycore::TaskSet tasks;
    tasks.numTasks = 64;
    tasks.instrPerTask = 50000;
    const manycore::WorkloadTraits traits;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model
                .estimate(chip().geometry(), cores, 0.5e9, tasks,
                          traits)
                .seconds);
}
BENCHMARK(BM_PerfModel)->Arg(0)->Arg(1)->ArgName("event");

void
BM_CoreSelection(benchmark::State &state)
{
    const manycore::PowerModel power(tech());
    for (auto _ : state) {
        core::CoreSelector selector(chip(), power);
        benchmark::DoNotOptimize(selector.selectCores(128).size());
    }
}
BENCHMARK(BM_CoreSelection);

void
BM_Kernel(benchmark::State &state)
{
    const rms::Workload &w =
        *rms::allWorkloads()[static_cast<std::size_t>(state.range(0))];
    rms::RunConfig config;
    config.input = w.defaultInput();
    config.threads = w.defaultThreads();
    for (auto _ : state)
        benchmark::DoNotOptimize(w.run(config).problemSize);
    state.SetLabel(w.name());
}
BENCHMARK(BM_Kernel)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
