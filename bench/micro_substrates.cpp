/**
 * @file
 * google-benchmark microbenchmarks of the substrates themselves:
 * variation-field sampling, chip manufacturing, timing-model
 * queries, the event-driven vs analytic performance models, and the
 * RMS kernels at their default inputs. These guard the simulator's
 * own performance, not the paper's results.
 *
 * The benchmark bodies are shared with the `accordion perf`
 * snapshot suite (src/harness/perf_kernels.hpp), so a regression
 * flagged by `accordion perf compare` reproduces here one-to-one.
 */

#include <benchmark/benchmark.h>

#include "harness/perf_kernels.hpp"
#include "manycore/power_model.hpp"

using namespace accordion;
namespace kernels = accordion::harness::kernels;

namespace {

const kernels::SubstrateFixtures &
fixtures()
{
    static const kernels::SubstrateFixtures f(12345);
    return f;
}

void
BM_ChipManufacture(benchmark::State &state)
{
    std::uint64_t id = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::manufactureOne(fixtures().factory, id++));
}
BENCHMARK(BM_ChipManufacture);

void
BM_SafeFrequencyQuery(benchmark::State &state)
{
    const auto &chip = fixtures().chip;
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::safeFrequencyOnce(chip));
}
BENCHMARK(BM_SafeFrequencyQuery);

void
BM_SafeFrequencyBatch(benchmark::State &state)
{
    const auto &chip = fixtures().chip;
    std::vector<double> out(chip.numCores());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::safeFrequenciesBatch(chip, out));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(chip.numCores()));
}
BENCHMARK(BM_SafeFrequencyBatch);

void
BM_ErrorRateQuery(benchmark::State &state)
{
    const auto &chip = fixtures().chip;
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::errorRateOnce(chip));
}
BENCHMARK(BM_ErrorRateQuery);

void
BM_ErrorRateBatch(benchmark::State &state)
{
    const auto &chip = fixtures().chip;
    std::vector<double> out(chip.numCores());
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::errorRatesBatch(chip, out));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(chip.numCores()));
}
BENCHMARK(BM_ErrorRateBatch);

void
BM_SpecFrequencyBatch(benchmark::State &state)
{
    const auto &chip = fixtures().chip;
    std::vector<double> out(chip.numCores());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::speculativeFrequenciesBatch(chip, out));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(chip.numCores()));
}
BENCHMARK(BM_SpecFrequencyBatch);

void
BM_PerfModel(benchmark::State &state)
{
    const bool event_driven = state.range(0) != 0;
    const manycore::EventDrivenPerfModel event;
    const manycore::AnalyticPerfModel analytic;
    const manycore::PerfModel &model =
        event_driven ? static_cast<const manycore::PerfModel &>(event)
                     : analytic;
    const kernels::PerfModelInput input;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::estimateOnce(model, fixtures().chip, input));
}
BENCHMARK(BM_PerfModel)->Arg(0)->Arg(1)->ArgName("event");

void
BM_CoreSelection(benchmark::State &state)
{
    const manycore::PowerModel power(fixtures().tech);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kernels::selectOnce(fixtures().chip, power));
}
BENCHMARK(BM_CoreSelection);

void
BM_Kernel(benchmark::State &state)
{
    const rms::Workload &w =
        *rms::allWorkloads()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state)
        benchmark::DoNotOptimize(kernels::kernelOnce(w));
    state.SetLabel(w.name());
}
BENCHMARK(BM_Kernel)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
