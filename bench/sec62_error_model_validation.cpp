/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/sec62_error_model_validation.cpp; this binary keeps the legacy
 * invocation (`bench/sec62_error_model_validation [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * sec62_error_model_validation`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("sec62_error_model_validation");
}
