/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/comparison_baselines.cpp; this binary keeps the legacy
 * invocation (`bench/comparison_baselines [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * comparison_baselines`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("comparison_baselines");
}
