/**
 * @file
 * Reproduces Table 1: the basic Accordion modes of operation, and
 * demonstrates their arithmetic on the default chip — Still keeps
 * the problem size and grows N by >= fSTV/fNTV; Compress shrinks
 * both; Expand grows N faster than the problem size.
 */

#include "common.hpp"
#include "core/accordion.hpp"

using namespace accordion;

int
main()
{
    util::setVerbose(false);
    bench::banner("Table 1 — basic Accordion modes of operation",
                  "Still: PS fixed, N x fSTV/fNTV; Compress: smaller "
                  "PS, fewer cores, Q loss; Expand: larger PS, N "
                  "grows faster than PS");

    util::Table semantics({"Mode", "Problem size", "Core count",
                           "Quality", "Flavors"});
    semantics.addRow({"Still", "PS_NTV = PS_STV",
                      "N_NTV >= N_STV x f_STV/f_NTV", "Q_NTV = Q_STV",
                      "Safe / Speculative"});
    semantics.addRow({"Compress", "PS_NTV < PS_STV",
                      "no restriction (can be < N_STV)",
                      "Q_NTV <= Q_STV", "Safe / Speculative"});
    semantics.addRow({"Expand", "PS_NTV > PS_STV",
                      "N_NTV > N_STV (faster than PS)",
                      "Q_NTV >= Q_STV (Safe)", "Safe / Speculative"});
    std::printf("%s\n", semantics.render().c_str());

    core::AccordionSystem system;
    const rms::Workload &w = rms::findWorkload("canneal");
    const core::QualityProfile &profile = system.profile("canneal");
    const core::StvBaseline base = system.pareto().baseline(w, profile);

    util::Table demo({"PS/PSstv", "mode", "N/Nstv",
                      "per-core work x", "f (GHz)", "Q/Qstv"});
    for (double ps : {0.5, 1.0, 1.33}) {
        const auto p = system.pareto().evaluateAt(
            w, profile, core::Flavor::Safe, ps, base);
        demo.addRow({util::format("%.2f", ps),
                     core::sizeModeName(p.sizeMode),
                     util::format("%.2f", p.nRatio(base)),
                     util::format("%.2f",
                                  ps / p.nRatio(base)),
                     util::format("%.2f", p.fHz / 1e9),
                     util::format("%.3f", p.qualityRatio)});
    }
    std::printf("measured on the default chip (canneal, Safe):\n%s",
                demo.render().c_str());
    std::printf("\nnote: per-core work (PS/N normalized to STV) stays "
                "<= f_NTV/f_STV = %.2f in every feasible mode, as "
                "Table 1 requires\n",
                0.35e9 / base.fHz);
    return 0;
}
