/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/table1_modes.cpp; this binary keeps the legacy
 * invocation (`bench/table1_modes [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * table1_modes`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("table1_modes");
}
