/**
 * @file
 * Reproduces Fig. 6: iso-execution-time pareto fronts for the four
 * PARSEC kernels — canneal, ferret, bodytrack, x264.
 */

#include "pareto_bench.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::runParetoBench(
        "6", {"canneal", "ferret", "bodytrack", "x264"}, argc, argv);
    return 0;
}
