/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig6_pareto_parsec.cpp; this binary keeps the legacy
 * invocation (`bench/fig6_pareto_parsec [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig6_pareto_parsec`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig6_pareto_parsec");
}
