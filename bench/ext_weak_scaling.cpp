/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/ext_weak_scaling.cpp; this binary keeps the legacy
 * invocation (`bench/ext_weak_scaling [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * ext_weak_scaling`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("ext_weak_scaling");
}
