/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig5_variation.cpp; this binary keeps the legacy
 * invocation (`bench/fig5_variation [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig5_variation`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig5_variation");
}
