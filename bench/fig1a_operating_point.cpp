/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig1a_operating_point.cpp; this binary keeps the legacy
 * invocation (`bench/fig1a_operating_point [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig1a_operating_point`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig1a_operating_point");
}
