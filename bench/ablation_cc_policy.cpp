/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/ablation_cc_policy.cpp; this binary keeps the legacy
 * invocation (`bench/ablation_cc_policy [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * ablation_cc_policy`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("ablation_cc_policy");
}
