/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/table2_parameters.cpp; this binary keeps the legacy
 * invocation (`bench/table2_parameters [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * table2_parameters`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("table2_parameters");
}
