/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/sec63_speculative_f.cpp; this binary keeps the legacy
 * invocation (`bench/sec63_speculative_f [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * sec63_speculative_f`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("sec63_speculative_f");
}
