/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/fig2_fig4_quality_fronts.cpp; this binary keeps the legacy
 * invocation (`bench/fig2_fig4_quality_fronts [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * fig2_fig4_quality_fronts`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("fig2_fig4_quality_fronts");
}
