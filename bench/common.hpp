/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses. Every
 * bench prints a header naming the paper artifact it regenerates,
 * the paper's reported behavior, and a diffable ASCII table of the
 * measured series; each also drops a CSV under bench_out/ for
 * external re-plotting.
 */

#ifndef ACCORDION_BENCH_COMMON_HPP
#define ACCORDION_BENCH_COMMON_HPP

#include <cstdio>
#include <filesystem>
#include <string>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace accordion::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &paper_claim)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("---------------------------------------------------"
                "-----------\n");
}

/** Open a CSV under bench_out/, creating the directory. */
inline util::CsvWriter
csvFor(const std::string &name, std::vector<std::string> header)
{
    std::filesystem::create_directories("bench_out");
    return util::CsvWriter("bench_out/" + name + ".csv",
                           std::move(header));
}

} // namespace accordion::bench

#endif // ACCORDION_BENCH_COMMON_HPP
