/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses. Every
 * bench prints a header naming the paper artifact it regenerates,
 * the paper's reported behavior, and a diffable ASCII table of the
 * measured series; each also drops a CSV under bench_out/ for
 * external re-plotting.
 */

#ifndef ACCORDION_BENCH_COMMON_HPP
#define ACCORDION_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "harness/args.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace accordion::bench {

/**
 * Size the global thread pool from a `--threads N` argument
 * (falling back to ACCORDION_THREADS / hardware_concurrency via
 * ThreadPool::defaultThreads()). Call first thing in main(); sweeps
 * produce bit-identical output at every thread count, so the knob
 * only moves wall-clock.
 */
inline void
initThreads(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            std::size_t n = 0;
            if (!harness::parsePositiveCount(argv[i + 1], &n))
                util::fatal("--threads wants a positive integer, "
                            "got '%s'", argv[i + 1]);
            util::ThreadPool::setGlobalThreads(n);
            return;
        }
    }
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &paper_claim)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("---------------------------------------------------"
                "-----------\n");
}

/** Open a CSV under bench_out/, creating the directory. */
inline util::CsvWriter
csvFor(const std::string &name, std::vector<std::string> header)
{
    std::filesystem::create_directories("bench_out");
    return util::CsvWriter("bench_out/" + name + ".csv",
                           std::move(header));
}

} // namespace accordion::bench

#endif // ACCORDION_BENCH_COMMON_HPP
