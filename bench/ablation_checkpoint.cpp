/**
 * @file
 * Compatibility shim. The experiment itself now lives in
 * src/harness/experiments/ablation_checkpoint.cpp; this binary keeps the legacy
 * invocation (`bench/ablation_checkpoint [--threads N]`) working with
 * byte-identical output. New code should use `accordion run
 * ablation_checkpoint`.
 */

#include "common.hpp"
#include "harness/cli.hpp"

int
main(int argc, char **argv)
{
    accordion::bench::initThreads(argc, argv);
    return accordion::harness::runLegacy("ablation_checkpoint");
}
